"""End-to-end result integrity: checksum lineage, audits and blame.

Every other fault the simulator injects eventually *announces itself*
(a crash, a lost node, a silent heartbeat).  Silent data corruption
does not: a device computes a wrong contraction, reports success, and
the wrong tensor propagates through every downstream pair that reuses
it.  This module is the defense:

* :class:`IntegrityConfig` — the ``integrity`` block of ``ServeConfig``
  (schema v7): detection mode, audit sampling fraction, audit/recompute
  budget, blame thresholds.
* :class:`IntegrityState` — the per-run state machine shared by the
  engine and the serving loop.  It keeps the *checksum ledger* (which
  tensor copies are corrupt, who corrupted them, and which injected
  root taint they descend from), attributes blame per device with a
  corruption EWMA and a ``trusted → suspect → quarantined`` lifecycle,
  and carries every integrity counter the report surfaces.

Checksums are modelled, not computed: each tensor uid has a
deterministic *true* content version (:meth:`IntegrityState.true_version`)
and each device copy an *actual* version that diverges from it exactly
when the copy is corrupt (:meth:`IntegrityState.copy_version`).  A
contraction derives its output's version from its inputs' versions, so
taint propagates through the lineage the same way a real end-to-end
checksum chain would reveal it — and an audit recomputation on a clean
device "recomputes" the true version and exposes the mismatch.

Detection never consults ground truth to decide *what* to check: audit
sampling is a deterministic hash draw, transfer verification runs on
every receipt, and suspicion comes from previously attributed
detections.  Ground truth is only read where a real checksum
comparison would physically reveal it (the audit/receipt mismatch) and
in the report's ``escaped`` counter (corrupt results that made it into
reported completions — the caveat the README documents).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

#: Detection modes of the integrity subsystem.
#:
#: * ``"off"`` — no ledger, no audits; corruption goes unobserved.
#: * ``"spot"`` — sampled audit recomputation of completed pairs on a
#:   *different* device (``audit_fraction`` of pairs), escalating to a
#:   full audit of a ticket once one of its pairs fails, and to always
#:   auditing pairs produced by already-suspect devices.
#: * ``"suspect-full"`` — ``"spot"`` plus dual-checking *every* pair of
#:   any ticket that touched a suspect device.
INTEGRITY_MODES = ("off", "spot", "suspect-full")

#: Device blame lifecycle states (alongside the shard-level health
#: lifecycle of :mod:`repro.serve.health`).
BLAME_STATES = ("trusted", "suspect", "quarantined")

_MASK64 = (1 << 64) - 1
_2_64 = float(1 << 64)


def mix64(*values: int) -> int:
    """Deterministic 64-bit hash of a tuple of ints (splitmix64-style).

    The integrity layer's only randomness source: corruption draws,
    audit sampling and content versions all come from this mix, so a
    fixed seed replays bit-identically — there is no hidden RNG state
    to diverge between the vectorized and reference cores.
    """
    h = 0x9E3779B97F4A7C15
    for v in values:
        h = (h ^ (v & _MASK64)) & _MASK64
        h = (h * 0xBF58476D1CE4E5B9) & _MASK64
        h ^= h >> 27
        h = (h * 0x94D049BB133111EB) & _MASK64
        h ^= h >> 31
    return h


@dataclass(frozen=True)
class IntegrityConfig:
    """The ``integrity`` block of ``ServeConfig`` (schema v7).

    Parameters
    ----------
    mode:
        One of :data:`INTEGRITY_MODES` (``"off"`` disables everything).
    audit_fraction:
        Probability (deterministic hash draw per pair) that a completed
        pair is spot-audited by recomputation on another device.
    audit_budget_frac:
        Ceiling on total audit/recompute seconds as a fraction of the
        run's cumulative compute seconds.  Past it, sampled audits are
        skipped and suspect tickets degrade to the
        ``integrity-unverified`` outcome instead of a recompute storm.
    blame_threshold:
        Corruption-EWMA level at which a device is quarantined.
    blame_alpha:
        EWMA smoothing factor: each attributed detection moves the
        device's score toward 1, each clean audit of its work decays it.
    verify_transfers:
        Verify checksums on D2D receipt: a corrupt copy is caught at
        the transfer boundary, re-fetched clean from the host, and its
        source copy invalidated.
    quarantine_devices:
        Let a quarantined blame state actually retire the device from
        the serving pool (the last alive device is never retired).
    """

    mode: str = "off"
    audit_fraction: float = 0.25
    audit_budget_frac: float = 0.5
    blame_threshold: float = 0.4
    blame_alpha: float = 0.25
    verify_transfers: bool = True
    quarantine_devices: bool = True

    def __post_init__(self):
        if self.mode not in INTEGRITY_MODES:
            raise ConfigurationError(
                f"unknown integrity mode {self.mode!r}; expected one of {INTEGRITY_MODES}"
            )
        if not 0 < self.audit_fraction <= 1:
            raise ConfigurationError(
                f"audit_fraction must be in (0, 1], got {self.audit_fraction}"
            )
        if not 0 < self.audit_budget_frac <= 1:
            raise ConfigurationError(
                f"audit_budget_frac must be in (0, 1], got {self.audit_budget_frac}"
            )
        if not 0 < self.blame_threshold <= 1:
            raise ConfigurationError(
                f"blame_threshold must be in (0, 1], got {self.blame_threshold}"
            )
        if not 0 < self.blame_alpha < 1:
            raise ConfigurationError(
                f"blame_alpha must be in (0, 1), got {self.blame_alpha}"
            )

    def with_(self, **kwargs) -> "IntegrityConfig":
        """Copy with overrides (sweep convenience)."""
        return replace(self, **kwargs)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "audit_fraction": self.audit_fraction,
            "audit_budget_frac": self.audit_budget_frac,
            "blame_threshold": self.blame_threshold,
            "blame_alpha": self.blame_alpha,
            "verify_transfers": self.verify_transfers,
            "quarantine_devices": self.quarantine_devices,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "IntegrityConfig":
        if not isinstance(d, dict):
            raise ConfigurationError(f"integrity config must be a JSON object, got {d!r}")
        known = set(cls().to_dict())
        unknown = set(d) - known
        if unknown:
            raise ConfigurationError(f"unknown integrity config keys: {sorted(unknown)}")
        return cls(**d)


class IntegrityState:
    """Checksum ledger, blame tracker and integrity counters of one run.

    The *ledger* maps each corrupt tensor copy ``(uid, device)`` to the
    device that corrupted it and the *root* uid the taint descends from
    (the tensor where a corruption event was actually injected).  Clean
    copies are simply absent — steady-state overhead with no corruption
    is a handful of dictionary misses per pair.

    Attached to the engine as ``engine.integrity`` for the run (like
    the fault injector); the serving loop drives audits and quarantine
    through the same object.
    """

    def __init__(self, config: IntegrityConfig, num_devices: int):
        if num_devices < 1:
            raise ConfigurationError(f"num_devices must be >= 1, got {num_devices}")
        self.config = config
        self.num_devices = num_devices
        #: uid → {device: (blame_device, root_uid)} for corrupt copies.
        self._dirty: dict[int, dict[int, tuple[int, int]]] = {}
        #: root uid → taint creation time (first corruption of that uid).
        self._born: dict[int, float] = {}
        #: root uids where corruption was actually injected / detected.
        self._injected_roots: set[int] = set()
        self._detected_roots: set[int] = set()
        # Blame lifecycle.
        self.ewma = [0.0] * num_devices
        self.device_detections = [0] * num_devices
        self.blame_state = ["trusted"] * num_devices
        self.blame_log: list[dict] = []
        self._pending_quarantine: list[int] = []
        # Counters.
        self.injected = 0            # corruption events fired (computes + bitflips)
        self.detected = 0            # mismatches caught (audits + transfer receipts)
        self.repaired = 0            # detected taints replaced by a clean recompute
        self.flagged = 0             # detected taints shed as integrity-unverified
        self.escaped = 0             # corrupt outputs inside reported completions
        self.audited_pairs = 0
        self.audit_spent_s = 0.0
        self.transfer_detections = 0
        self.budget_skipped = 0
        self.unverified_tickets = 0
        self.detection_latency_s: list[float] = []

    # ------------------------------------------------------------- checksums
    def true_version(self, uid: int) -> int:
        """The tensor's true content version (what a clean copy hashes to)."""
        return mix64(0xC0FFEE, uid)

    def copy_version(self, uid: int, device: int) -> int:
        """The version the copy on ``device`` actually carries.

        Diverges from :meth:`true_version` exactly when the copy is
        corrupt; the divergent value is itself a deterministic function
        of the corruption's provenance, so ledger snapshots compare
        equal across the vectorized and reference cores.
        """
        entry = self._dirty.get(uid, {}).get(device)
        if entry is None:
            return self.true_version(uid)
        blame, root = entry
        return mix64(0xBAD5EED, uid, blame, root)

    def derived_version(self, out_uid: int, left_uid: int, right_uid: int, device: int) -> int:
        """Output version a contraction on ``device`` would produce.

        Derived from the *actual* input copy versions — corrupt inputs
        yield a corrupt output version, which is how lineage taint
        survives into every downstream checksum.
        """
        return mix64(
            0xDE21BED,
            out_uid,
            self.copy_version(left_uid, device),
            self.copy_version(right_uid, device),
        )

    # ---------------------------------------------------- engine-facing hooks
    @property
    def verify_transfers_active(self) -> bool:
        return self.config.mode != "off" and self.config.verify_transfers

    def note_h2d(self, uid: int, device: int) -> None:
        """A host fetch landed: the host copy is authoritative and clean."""
        devs = self._dirty.get(uid)
        if devs is not None:
            devs.pop(device, None)
            if not devs:
                del self._dirty[uid]

    def note_d2d(self, uid: int, src: int, dst: int) -> tuple[int, int] | None:
        """A D2D copy landed on ``dst``; returns the ``(blame, root)``
        provenance when the received copy is corrupt, else ``None``.

        Corruption propagates with the copy: a dirty source makes a
        dirty destination (the checksum travels with the bytes)."""
        devs = self._dirty.get(uid)
        entry = devs.get(src) if devs is not None else None
        if entry is None:
            self.note_h2d(uid, dst)  # same clean-copy bookkeeping
            return None
        devs[dst] = entry
        return entry

    def clear_copy(self, uid: int, device: int) -> None:
        """Forget a copy's ledger entry (the copy itself is gone)."""
        self.note_h2d(uid, device)

    def transfer_detected(
        self, uid: int, src: int, dst: int, entry: tuple[int, int], now: float
    ) -> None:
        """Verify-on-receipt caught a corrupt transfer.

        The receiving copy was re-fetched clean from the host (the
        engine charges that), the dirty source copy is invalidated, and
        the producer is blamed.  Counts as detected *and* repaired —
        the clean re-fetch is the repair.
        """
        blame, root = entry
        self.clear_copy(uid, dst)
        self.clear_copy(uid, src)
        self.detected += 1
        self.repaired += 1
        self.transfer_detections += 1
        self._note_root_detected(root, now)
        self._blame(blame, now)

    def note_compute(self, pair, device: int, corrupt: bool, now: float) -> None:
        """A contraction ran on ``device``; derive the output's taint.

        ``corrupt`` is the injector's corruption draw for this kernel.
        A clean kernel over a dirty input copy still yields a dirty
        output (lineage propagation), blamed on the original corruptor.
        """
        out_uid = pair.out.uid
        entry = None
        if corrupt:
            entry = (device, out_uid)
            self.injected += 1
            self._injected_roots.add(out_uid)
            if out_uid not in self._born:
                self._born[out_uid] = now
        else:
            devs_l = self._dirty.get(pair.left.uid)
            if devs_l is not None:
                entry = devs_l.get(device)
            if entry is None:
                devs_r = self._dirty.get(pair.right.uid)
                if devs_r is not None:
                    entry = devs_r.get(device)
        if entry is None:
            self.clear_copy(out_uid, device)
            return
        self._dirty.setdefault(out_uid, {})[device] = entry

    def flip(self, uid: int, device: int, now: float) -> None:
        """A ``tensor_bitflip`` fault corrupted a resident copy in place."""
        self._dirty.setdefault(uid, {})[device] = (device, uid)
        self.injected += 1
        self._injected_roots.add(uid)
        if uid not in self._born:
            self._born[uid] = now

    # --------------------------------------------------------- audit support
    def sampled(self, vector_id: int, pair_index: int) -> bool:
        """Deterministic spot-audit draw for one completed pair."""
        return (
            mix64(0xAD017, vector_id, pair_index)
            < self.config.audit_fraction * _2_64
        )

    def output_entry(self, uid: int, producer: int) -> tuple[int, int] | None:
        """The corrupt-copy provenance an audit of ``uid`` would expose.

        Prefers the producing device's copy; falls back to any corrupt
        copy of the uid (lowest device id, deterministic)."""
        devs = self._dirty.get(uid)
        if not devs:
            return None
        entry = devs.get(producer)
        if entry is not None:
            return entry
        return devs[min(devs)]

    def audit_detected(self, uid: int, now: float) -> list[int]:
        """An audit recomputation exposed a corrupt output.

        The recompute on the clean auditor device *is* the repair, so
        the taint counts detected and (provisionally) repaired —
        :meth:`flag_ticket` later reclassifies it if the owning ticket
        is shed unverified.  Returns the devices whose copies of the
        uid must be invalidated (journal drop reason ``corrupt``)."""
        devs = self._dirty.pop(uid, {})
        entries = set(devs.values())
        self.detected += 1
        self.repaired += 1
        for blame, root in sorted(entries):
            self._note_root_detected(root, now)
            self._blame(blame, now)
            break  # one provenance per output: blame the closest producer
        return sorted(devs)

    def clean_audit(self, device: int) -> None:
        """An audit of ``device``'s output matched: decay its blame."""
        self.ewma[device] *= 1.0 - self.config.blame_alpha

    def charge_audit(self, seconds: float) -> None:
        self.audited_pairs += 1
        self.audit_spent_s += seconds

    def flag_ticket(self, detected_in_ticket: int) -> None:
        """A ticket degrades to ``integrity-unverified``.

        Its already-detected taints were repaired in vain (the result
        is shed), so they move from ``repaired`` to ``flagged`` —
        keeping the conservation ``detected == repaired + flagged``
        exact."""
        self.repaired -= detected_in_ticket
        self.flagged += detected_in_ticket
        self.unverified_tickets += 1

    def note_reported(self, vector, assignment) -> None:
        """A completion is being reported: count corrupt outputs that
        escaped detection (report-only; behavior never depends on it)."""
        for pair in vector.pairs:
            if self._dirty.get(pair.out.uid):
                self.escaped += 1

    def dirty_uids_on(self, device: int) -> list[int]:
        """Uids with a corrupt copy on ``device`` (sorted, for invalidation)."""
        return sorted(uid for uid, devs in self._dirty.items() if device in devs)

    # ----------------------------------------------------------------- blame
    def is_suspect(self, device: int) -> bool:
        """Device has at least one attributed detection (not ``trusted``)."""
        return self.blame_state[device] != "trusted"

    def _note_root_detected(self, root: int, now: float) -> None:
        if root in self._detected_roots:
            return
        self._detected_roots.add(root)
        born = self._born.get(root)
        if born is not None:
            self.detection_latency_s.append(now - born)

    def _blame(self, device: int, now: float) -> None:
        self.device_detections[device] += 1
        a = self.config.blame_alpha
        self.ewma[device] = (1.0 - a) * self.ewma[device] + a
        if self.blame_state[device] == "trusted":
            self._transition(device, "suspect", now)
        if (
            self.ewma[device] >= self.config.blame_threshold
            and self.blame_state[device] != "quarantined"
        ):
            self._transition(device, "quarantined", now)
            if self.config.quarantine_devices:
                self._pending_quarantine.append(device)

    def _transition(self, device: int, to: str, now: float) -> None:
        self.blame_log.append(
            {
                "time_s": now,
                "device": device,
                "from": self.blame_state[device],
                "to": to,
                "ewma": self.ewma[device],
            }
        )
        self.blame_state[device] = to

    def poll_quarantines(self) -> list[int]:
        """Devices newly crossing the blame threshold (each once)."""
        if not self._pending_quarantine:
            return []
        out = self._pending_quarantine
        self._pending_quarantine = []
        return out

    def quarantined_devices(self) -> list[int]:
        return [d for d in range(self.num_devices) if self.blame_state[d] == "quarantined"]

    # --------------------------------------------------------------- summary
    def detection_rate(self) -> float:
        """Fraction of injected root taints that were detected."""
        if not self._injected_roots:
            return 1.0
        return len(self._injected_roots & self._detected_roots) / len(self._injected_roots)

    def summary(self, compute_s: float) -> dict:
        """The ``result.integrity`` report section."""
        lat = self.detection_latency_s
        return {
            "mode": self.config.mode,
            "injected": self.injected,
            "detected": self.detected,
            "repaired": self.repaired,
            "flagged": self.flagged,
            "escaped": self.escaped,
            "detection_rate": self.detection_rate(),
            "audited_pairs": self.audited_pairs,
            "audit_s": self.audit_spent_s,
            "audit_overhead_frac": (self.audit_spent_s / compute_s) if compute_s > 0 else 0.0,
            "transfer_detections": self.transfer_detections,
            "budget_skipped": self.budget_skipped,
            "unverified_tickets": self.unverified_tickets,
            "mean_detection_latency_s": (sum(lat) / len(lat)) if lat else 0.0,
            "max_detection_latency_s": max(lat, default=0.0),
            "blame": {
                "states": {str(d): self.blame_state[d] for d in range(self.num_devices)},
                "ewma": list(self.ewma),
                "detections": list(self.device_detections),
                "quarantined": self.quarantined_devices(),
                "transitions": list(self.blame_log),
            },
        }
