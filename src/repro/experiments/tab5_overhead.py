"""Table V — scheduling overhead vs total execution time.

The paper measures MICCO-optimal's decision cost (Alg. 1 + Alg. 2 plus
regression inference) against total execution time for ten vectors of
size 64 at 50 % repeated rate: 8.27 ms / 4925 ms (Uniform, 0.17 %) and
8.52 ms / 1550 ms (Gaussian).  Here the overhead is *real* wall-clock
of the Python scheduler; total time is the simulated makespan — the
reproducible claim is that the scheduler is a negligible fraction of
execution.  The default batch (512) sizes per-pair work to the paper's
multi-second totals; decisions are batch-independent, so the overhead
numerator is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import MiccoConfig
from repro.core.framework import Micco
from repro.experiments.common import get_default_predictor, pressured_config
from repro.experiments.report import Table
from repro.workloads.synth import SyntheticWorkload, WorkloadParams


@dataclass
class Tab5Result:
    rows: list[dict] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            "Table V — Execution time (ms), sum of 10 vectors",
            ["dist", "sched overhead", "inference", "total (simulated)", "overhead %"],
        )
        for r in self.rows:
            t.add_row(
                r["distribution"],
                r["schedule_ms"],
                r["inference_ms"],
                r["total_ms"],
                100.0 * r["overhead_fraction"],
            )
        return t


def run(
    *,
    distributions=("uniform", "gaussian"),
    vector_size: int = 64,
    tensor_size: int = 384,
    repeated_rate: float = 0.5,
    num_devices: int = 8,
    num_vectors: int = 10,
    batch: int = 512,
    subscription: float | None = 0.9,
    seed: int = 7,
    quick: bool = True,
    predictor=None,
) -> Tab5Result:
    """Measure MICCO-optimal's real decision overhead on the Table V setup."""
    base = MiccoConfig(num_devices=num_devices)
    if predictor is None:
        predictor = get_default_predictor(base, quick=quick, seed=seed)
    result = Tab5Result()
    for dist in distributions:
        params = WorkloadParams(
            vector_size=vector_size,
            tensor_size=tensor_size,
            repeated_rate=repeated_rate,
            distribution=dist,
            num_vectors=num_vectors,
            batch=batch,
        )
        vectors = SyntheticWorkload(params, seed=seed).vectors()
        config = pressured_config(vectors, base, subscription)
        run_result = Micco.optimal(predictor, config).run(vectors)
        total_s = run_result.makespan_s
        overhead_s = run_result.total_overhead_s
        result.rows.append(
            {
                "distribution": dist,
                "schedule_ms": 1e3 * run_result.schedule_overhead_s,
                "inference_ms": 1e3 * run_result.inference_overhead_s,
                "total_ms": 1e3 * total_s,
                "overhead_fraction": overhead_s / (overhead_s + total_s),
            }
        )
    return result


def main(quick: bool = True) -> str:
    res = run(quick=quick)
    lines = [res.table().to_text(), ""]
    lines.append("paper: 8.27 ms / 4925.73 ms (uniform), 8.52 ms / 1550.88 ms (gaussian)")
    return "\n".join(lines)
