"""Ablation studies on MICCO's design choices (beyond the paper's tables).

Four ablations, each isolating one mechanism:

* **policy** — MICCO vs its pattern-blind and eviction-insensitive
  variants, plus the locality-only and random poles (which of the three
  toggling policies earns the speedup?).
* **eviction** — LRU vs FIFO vs largest-first victim selection under
  oversubscription.
* **overlap** — the async-copy/prefetch future-work model: how much of
  the memory-op wall does overlap recover, and does the scheduler gap
  persist once transfers hide behind kernels?
* **multinode** — the multi-node future-work extension: 8 devices as
  1×8, 2×4 and 4×2 nodes; cross-node transfers make reuse-blind
  placement progressively more expensive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import MiccoConfig
from repro.core.framework import Micco
from repro.experiments.common import pressured_config
from repro.experiments.report import Table
from repro.gpusim.costmodel import CostModel
from repro.gpusim.topology import Topology
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.costgreedy import CostGreedyScheduler
from repro.schedulers.groute import GrouteScheduler
from repro.schedulers.locality import LocalityScheduler, RandomScheduler
from repro.schedulers.micco import MiccoScheduler
from repro.workloads.synth import SyntheticWorkload, WorkloadParams

#: Shared workload: the Fig. 7 sweet spot (reuse matters, balance binds).
DEFAULT_PARAMS = WorkloadParams(
    vector_size=64, tensor_size=384, repeated_rate=0.75,
    distribution="gaussian", num_vectors=10, batch=32,
)


@dataclass
class AblationResult:
    title: str
    rows: list[dict] = field(default_factory=list)

    def gflops(self, name: str) -> float:
        for r in self.rows:
            if r["variant"] == name:
                return r["gflops"]
        raise KeyError(name)

    def table(self) -> Table:
        t = Table(self.title, ["variant", "gflops", "reuse hits", "transfers", "evictions"])
        for r in self.rows:
            t.add_row(r["variant"], r["gflops"], r["reuse_hits"], r["transfers"], r["evictions"])
        return t


def _row(name: str, result) -> dict:
    c = result.metrics.counts
    return {
        "variant": name,
        "gflops": result.gflops,
        "reuse_hits": c.reuse_hits,
        "transfers": c.input_fetches,
        "evictions": c.evictions,
    }


def run_policy_ablation(
    params: WorkloadParams = DEFAULT_PARAMS,
    *,
    num_devices: int = 8,
    subscription: float | None = 1.1,
    bounds: ReuseBounds = ReuseBounds(0, 4, 0),
    seed: int = 7,
) -> AblationResult:
    """Which scheduling policy earns the win?  Runs MICCO, its two
    ablated variants, and the balance-only / locality-only / random
    poles on one stream."""
    vectors = SyntheticWorkload(params, seed=seed).vectors()
    config = pressured_config(vectors, MiccoConfig(num_devices=num_devices), subscription)
    variants = {
        "micco (full)": MiccoScheduler(bounds),
        "micco - patterns": MiccoScheduler(bounds, pattern_aware=False),
        "micco - eviction policy": MiccoScheduler(bounds, eviction_sensitive=False),
        "cost-greedy (full model)": CostGreedyScheduler(config.cost_model),
        "groute (balance only)": GrouteScheduler(),
        "locality only": LocalityScheduler(),
        "random": RandomScheduler(seed=seed),
    }
    result = AblationResult("Ablation — scheduling policies (GFLOPS)")
    for name, sched in variants.items():
        run = Micco(config, scheduler=sched).run(vectors)
        result.rows.append(_row(name, run))
    return result


def run_eviction_ablation(
    params: WorkloadParams = DEFAULT_PARAMS,
    *,
    num_devices: int = 8,
    subscription: float = 1.5,
    bounds: ReuseBounds = ReuseBounds(0, 4, 0),
    seed: int = 7,
) -> AblationResult:
    """Victim-selection policy under 150 % oversubscription."""
    vectors = SyntheticWorkload(params, seed=seed).vectors()
    base = pressured_config(vectors, MiccoConfig(num_devices=num_devices), subscription)
    result = AblationResult(f"Ablation — eviction policy at {subscription:.0%} subscription (GFLOPS)")
    for policy in ("lru", "fifo", "largest"):
        config = base.with_(eviction_policy=policy)
        run = Micco(config, scheduler=MiccoScheduler(bounds)).run(vectors)
        result.rows.append(_row(policy, run))
    return result


def run_overlap_ablation(
    params: WorkloadParams = DEFAULT_PARAMS,
    *,
    num_devices: int = 8,
    fractions=(0.0, 0.5, 1.0),
    bounds: ReuseBounds = ReuseBounds(0, 4, 0),
    seed: int = 7,
) -> AblationResult:
    """Async-copy overlap (future work): throughput vs overlap fraction,
    for MICCO and Groute."""
    vectors = SyntheticWorkload(params, seed=seed).vectors()
    result = AblationResult("Ablation — transfer/compute overlap (GFLOPS)")
    for frac in fractions:
        config = MiccoConfig(num_devices=num_devices, cost_model=CostModel(overlap_fraction=frac))
        micco = Micco(config, scheduler=MiccoScheduler(bounds)).run(vectors)
        groute = Micco(config, scheduler=GrouteScheduler()).run(vectors)
        result.rows.append(_row(f"micco overlap={frac:.1f}", micco))
        result.rows.append(_row(f"groute overlap={frac:.1f}", groute))
    return result


def run_multinode_ablation(
    params: WorkloadParams = DEFAULT_PARAMS,
    *,
    num_devices: int = 8,
    nodes=(1, 2, 4),
    bounds: ReuseBounds = ReuseBounds(0, 4, 0),
    seed: int = 7,
) -> AblationResult:
    """Multi-node extension (future work): same 8 devices split across
    1, 2 or 4 nodes; cross-node D2D pays network bandwidth."""
    vectors = SyntheticWorkload(params, seed=seed).vectors()
    result = AblationResult("Ablation — multi-node topology (GFLOPS)")
    for n_nodes in nodes:
        topo = None
        if n_nodes > 1:
            topo = Topology(num_devices=num_devices, devices_per_node=num_devices // n_nodes)
        config = MiccoConfig(num_devices=num_devices, cost_model=CostModel(topology=topo))
        micco = Micco(config, scheduler=MiccoScheduler(bounds)).run(vectors)
        groute = Micco(config, scheduler=GrouteScheduler()).run(vectors)
        result.rows.append(_row(f"micco {n_nodes}x{num_devices // n_nodes}", micco))
        result.rows.append(_row(f"groute {n_nodes}x{num_devices // n_nodes}", groute))
    return result


def run(*, quick: bool = True, seed: int = 7) -> list[AblationResult]:
    """All four ablations on the shared default workload."""
    params = DEFAULT_PARAMS if not quick else DEFAULT_PARAMS.with_(num_vectors=8, batch=16)
    return [
        run_policy_ablation(params, seed=seed),
        run_eviction_ablation(params, seed=seed),
        run_overlap_ablation(params, seed=seed),
        run_multinode_ablation(params, seed=seed),
    ]


def main(quick: bool = True) -> str:
    return "\n\n".join(r.table().to_text() for r in run(quick=quick))
