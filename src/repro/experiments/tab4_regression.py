"""Table IV — R² of the three regression models.

Linear Regression vs Gradient Boosting vs Random Forest on the
reuse-bound prediction task (300 tuning samples, 20 % test split).
Paper values: 0.57 / 0.91 / 0.95 — the reproducible claim is the
*ordering* (the relationship is non-linear, so LR trails the tree
ensembles and Random Forest is the model of choice).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import MiccoConfig
from repro.experiments.report import Table
from repro.ml.dataset import TrainingSet, build_training_set
from repro.ml.forest import RandomForestRegressor
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.linear import LinearRegression
from repro.ml.metrics import r2_score

PAPER_R2 = {"linear": 0.57, "gradient-boosting": 0.91, "random-forest": 0.95}


@dataclass
class Tab4Result:
    scores: dict[str, float] = field(default_factory=dict)
    training_set: TrainingSet | None = None

    def table(self) -> Table:
        t = Table("Table IV — R² of regression models", ["model", "R² (ours)", "R² (paper)"])
        for name, score in self.scores.items():
            t.add_row(name, score, PAPER_R2[name])
        return t


def evaluate_models(ts: TrainingSet, *, n_estimators: int = 150, seed: int = 0) -> Tab4Result:
    """Fit and score the three models on an existing tuning set."""
    Xtr, Ytr, Xte, Yte = ts.split(0.2, seed=seed)
    models = {
        "linear": LinearRegression(),
        "gradient-boosting": GradientBoostingRegressor(n_estimators=n_estimators, seed=seed),
        "random-forest": RandomForestRegressor(n_estimators=n_estimators, seed=seed),
    }
    result = Tab4Result(training_set=ts)
    for name, model in models.items():
        model.fit(Xtr, Ytr)
        result.scores[name] = r2_score(Yte, model.predict(Xte))
    return result


def run(
    *,
    n_samples: int = 300,
    num_devices: int = 8,
    n_estimators: int = 150,
    seed: int = 3,
    quick: bool = True,
) -> Tab4Result:
    """Build the tuning set (paper: 300 samples) and score the models.

    ``quick`` economizes on ensemble size only: the sample count is
    load-bearing (the ~128-config evaluation grid needs ~300 samples
    for the 80/20 split to measure per-config interpolation; fewer
    samples leave too many test configurations unseen and all models
    collapse together).
    """
    if quick:
        n_estimators = min(n_estimators, 60)
    ts = build_training_set(
        n_samples, MiccoConfig(num_devices=num_devices), seed=seed, num_vectors=5, batch=8
    )
    return evaluate_models(ts, n_estimators=n_estimators, seed=seed)


def main(quick: bool = True) -> str:
    res = run(quick=quick)
    return res.table().to_text()
