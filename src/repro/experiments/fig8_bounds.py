"""Fig. 8 — impact of reuse bounds.

Thirteen bound triples measured on three cases:
Case 1: vector 64, rate 50 %; Case 2: vector 16, rate 25 %;
Case 3: vector 32, rate 75 %.  Tensor size 384.

The paper's triples use values 0–2; availability here counts tensor
*slots* (two per pair), so each paper value v maps to 2·v slots —
triple ``(0,2,0)`` in the paper is ``(0,4,0)`` here.  The headline
finding reproduces either way: the best triple shifts with the data
characteristics, so no single fixed setting wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import MiccoConfig
from repro.core.framework import Micco
from repro.experiments.common import pressured_config
from repro.experiments.report import Table
from repro.schedulers.bounds import ReuseBounds, THIRTEEN_SETTINGS
from repro.workloads.synth import SyntheticWorkload, WorkloadParams

#: The paper's Fig. 8 cases: (vector size, repeated rate, distribution).
CASES = (
    (64, 0.50, "uniform"),
    (16, 0.25, "uniform"),
    (32, 0.75, "gaussian"),
)


def slot_scaled(bounds: ReuseBounds) -> ReuseBounds:
    """Paper triple (values 0–2) → slot units (values doubled)."""
    return ReuseBounds.from_sequence([2 * v for v in bounds.as_tuple()])


@dataclass
class Fig8Result:
    #: per case: {paper-triple string: gflops}
    cases: list[dict] = field(default_factory=list)

    def best_setting(self, case_idx: int) -> tuple[str, float]:
        sweep = self.cases[case_idx]["sweep"]
        k = max(sweep, key=sweep.get)
        return k, sweep[k]

    def table(self) -> Table:
        t = Table(
            "Fig. 8 — GFLOPS per reuse-bound triple (paper units; slots = 2x)",
            ["bounds"] + [f"case{i+1} v{c[0]} r{int(c[1]*100)}% {c[2][:4]}" for i, c in enumerate(CASES)],
        )
        for b in THIRTEEN_SETTINGS:
            t.add_row(str(b), *[case["sweep"][str(b)] for case in self.cases])
        return t


def run(
    *,
    tensor_size: int = 384,
    num_devices: int = 8,
    num_vectors: int = 10,
    batch: int = 32,
    subscription: float | None = 0.9,
    seed: int = 7,
) -> Fig8Result:
    """Sweep the thirteen bound settings over the three paper cases."""
    base = MiccoConfig(num_devices=num_devices)
    result = Fig8Result()
    for vs, rate, dist in CASES:
        params = WorkloadParams(
            vector_size=vs,
            tensor_size=tensor_size,
            repeated_rate=rate,
            distribution=dist,
            num_vectors=num_vectors,
            batch=batch,
        )
        vectors = SyntheticWorkload(params, seed=seed).vectors()
        config = pressured_config(vectors, base, subscription)
        sweep = {}
        for b in THIRTEEN_SETTINGS:
            sweep[str(b)] = Micco.with_bounds(slot_scaled(b), config).run(vectors).gflops
        result.cases.append({"vector_size": vs, "repeated_rate": rate, "distribution": dist, "sweep": sweep})
    return result


def main(quick: bool = True) -> str:
    res = run()
    lines = [res.table().to_text(), ""]
    for i in range(len(CASES)):
        k, g = res.best_setting(i)
        lines.append(f"case {i+1} best: {k} at {g:.0f} GFLOPS")
    lines.append("paper: best triples differ per case — (0,2,0) for case 1, (0,2,2) for case 3")
    return "\n".join(lines)
