"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Table:
    """A titled text table.

    Cells are stringified with sensible numeric formatting; columns are
    padded to their widest entry.
    """

    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        self.rows.append(list(cells))

    @staticmethod
    def _fmt(cell) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 100:
                return f"{cell:.0f}"
            if abs(cell) >= 1:
                return f"{cell:.2f}"
            return f"{cell:.4f}"
        return str(cell)

    def to_text(self) -> str:
        cells = [[self._fmt(c) for c in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, c in enumerate(row):
                widths[i] = max(widths[i], len(c))
        lines = [self.title, ""]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()
