"""Fig. 5 — Spearman correlation heatmap.

Pairwise Spearman rank correlations among the four data
characteristics, the three (tuned-optimal) reuse bounds, and GFLOPS,
computed over the tuning set the regression model trains on — the same
data relationship the paper visualizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import MiccoConfig
from repro.experiments.report import Table
from repro.ml.dataset import TrainingSet, build_training_set
from repro.ml.metrics import spearman_matrix

COLUMNS = (
    "vector_size",
    "tensor_size",
    "distribution",
    "repeated_rate",
    "reuse_bound_1",
    "reuse_bound_2",
    "reuse_bound_3",
    "gflops",
)


@dataclass
class Fig5Result:
    names: list[str]
    matrix: np.ndarray
    training_set: TrainingSet | None = None

    def corr(self, a: str, b: str) -> float:
        return float(self.matrix[self.names.index(a), self.names.index(b)])

    def table(self) -> Table:
        t = Table("Fig. 5 — Spearman correlation matrix", ["column"] + list(self.names))
        for i, n in enumerate(self.names):
            t.add_row(n, *[float(v) for v in self.matrix[i]])
        return t


def from_training_set(ts: TrainingSet) -> Fig5Result:
    """Correlation matrix of an existing tuning set."""
    cols = {
        "vector_size": ts.X[:, 0],
        "tensor_size": ts.X[:, 1],
        "distribution": ts.X[:, 2],
        "repeated_rate": ts.X[:, 3],
        "reuse_bound_1": ts.Y[:, 0],
        "reuse_bound_2": ts.Y[:, 1],
        "reuse_bound_3": ts.Y[:, 2],
        "gflops": ts.gflops,
    }
    names, mat = spearman_matrix(cols)
    return Fig5Result(names=names, matrix=mat, training_set=ts)


def run(
    *,
    n_samples: int = 120,
    num_devices: int = 8,
    seed: int = 3,
    quick: bool = True,
) -> Fig5Result:
    """Build a tuning set and compute the heatmap matrix."""
    if quick:
        n_samples = min(n_samples, 120)
    ts = build_training_set(n_samples, MiccoConfig(num_devices=num_devices), seed=seed, num_vectors=5, batch=8)
    return from_training_set(ts)


def feature_importance_ranking(ts: TrainingSet, seed: int = 0) -> list[tuple[str, float]]:
    """Permutation importance of the four characteristics for the
    reuse-bound Random Forest — the quantitative companion to the
    heatmap's narrative."""
    from repro.ml.forest import RandomForestRegressor
    from repro.ml.importance import permutation_importance, rank_features
    from repro.workloads.characteristics import FEATURE_NAMES

    Xtr, Ytr, Xte, Yte = ts.split(0.2, seed=seed)
    model = RandomForestRegressor(n_estimators=60, seed=seed).fit(Xtr, Ytr)
    imp = permutation_importance(model, Xte, Yte, seed=seed)
    return rank_features(list(FEATURE_NAMES), imp)


def main(quick: bool = True) -> str:
    res = run(quick=quick)
    lines = [res.table().to_text(), ""]
    lines.append(
        f"vector_size~gflops: {res.corr('vector_size', 'gflops'):+.2f}, "
        f"tensor_size~gflops: {res.corr('tensor_size', 'gflops'):+.2f} "
        "(paper: all characteristics correlate positively with GFLOPS)"
    )
    ranking = feature_importance_ranking(res.training_set)
    lines.append("reuse-bound model permutation importance: " + ", ".join(f"{n}={v:+.3f}" for n, v in ranking))
    return "\n".join(lines)
