"""Experiment runners — one module per paper table/figure.

Every runner returns a structured result object with a ``table()``
method rendering the same rows/series the paper reports.  The
``benchmarks/`` tree wraps each runner in a pytest-benchmark target;
``python -m repro <experiment>`` runs them from the command line.

| Module                   | Paper artifact                         |
|--------------------------|----------------------------------------|
| ``fig5_spearman``        | Fig. 5 Spearman-correlation heatmap    |
| ``fig7_overall``         | Fig. 7 overall performance (a–h)       |
| ``fig8_bounds``          | Fig. 8 impact of reuse bounds          |
| ``fig9_scalability``     | Fig. 9 scalability 1→8 GPUs            |
| ``fig10_tensor_size``    | Fig. 10 tensor-size sweep              |
| ``fig11_oversubscription``| Fig. 11 memory oversubscription       |
| ``tab4_regression``      | Table IV regression-model R²           |
| ``tab5_overhead``        | Table V scheduling overhead            |
| ``tab6_redstar``         | Table VI real-world correlators        |
"""

from repro.experiments.report import Table
from repro.experiments import (
    ablations,
    sensitivity,
    fig5_spearman,
    fig7_overall,
    fig8_bounds,
    fig9_scalability,
    fig10_tensor_size,
    fig11_oversubscription,
    tab4_regression,
    tab5_overhead,
    tab6_redstar,
)

EXPERIMENTS = {
    "fig5": fig5_spearman,
    "fig7": fig7_overall,
    "fig8": fig8_bounds,
    "fig9": fig9_scalability,
    "fig10": fig10_tensor_size,
    "fig11": fig11_oversubscription,
    "tab4": tab4_regression,
    "tab5": tab5_overhead,
    "tab6": tab6_redstar,
    "ablations": ablations,
    "sensitivity": sensitivity,
}

__all__ = ["Table", "EXPERIMENTS"]
