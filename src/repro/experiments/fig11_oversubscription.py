"""Fig. 11 — memory oversubscription (125 % → 200 %).

Per-device capacity is derived from the workload so that demand equals
the target multiple of aggregate memory.  The paper reports GFLOPS
falling as the rate grows (evictions hurt), MICCO ahead throughout
(up to 1.9×), geomean speedups 1.2× (Uniform) / 1.4× (Gaussian).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import MiccoConfig
from repro.experiments.common import get_default_predictor, pressured_config, run_comparison
from repro.experiments.report import Table
from repro.workloads.synth import SyntheticWorkload, WorkloadParams

OVERSUB_RATES = (1.25, 1.5, 1.75, 2.0)


@dataclass
class Fig11Result:
    rows: list[dict] = field(default_factory=list)

    def series(self, distribution: str, system: str) -> list[float]:
        return [r[system] for r in self.rows if r["distribution"] == distribution]

    def geomean_speedup(self, distribution: str) -> float:
        sp = self.series(distribution, "speedup")
        return float(np.exp(np.mean(np.log(sp)))) if sp else float("nan")

    def table(self) -> Table:
        t = Table(
            "Fig. 11 — Memory oversubscription (GFLOPS)",
            ["dist", "oversub%", "groute", "micco-naive", "micco-optimal", "speedup", "evictions(g/m)"],
        )
        for r in self.rows:
            t.add_row(
                r["distribution"], int(100 * r["rate"]), r["groute"],
                r["micco-naive"], r["micco-optimal"], r["speedup"],
                f'{r["evictions_groute"]}/{r["evictions_micco"]}',
            )
        return t


def run(
    *,
    rates=OVERSUB_RATES,
    distributions=("uniform", "gaussian"),
    vector_size: int = 64,
    tensor_size: int = 384,
    repeated_rate: float = 0.5,
    num_devices: int = 8,
    num_vectors: int = 10,
    batch: int = 32,
    seed: int = 7,
    quick: bool = True,
    predictor=None,
) -> Fig11Result:
    """Sweep the oversubscription rate for both distributions."""
    base = MiccoConfig(num_devices=num_devices)
    if predictor is None:
        predictor = get_default_predictor(base, quick=quick, seed=seed)
    result = Fig11Result()
    for dist in distributions:
        params = WorkloadParams(
            vector_size=vector_size,
            tensor_size=tensor_size,
            repeated_rate=repeated_rate,
            distribution=dist,
            num_vectors=num_vectors,
            batch=batch,
        )
        vectors = SyntheticWorkload(params, seed=seed).vectors()
        for rate in rates:
            config = pressured_config(vectors, base, rate)
            runs = run_comparison(vectors, config, predictor)
            row = {
                "distribution": dist,
                "rate": rate,
                "groute": runs["groute"].gflops,
                "micco-naive": runs["micco-naive"].gflops,
                "micco-optimal": runs["micco-optimal"].gflops,
                "evictions_groute": runs["groute"].metrics.counts.evictions,
                "evictions_micco": runs["micco-optimal"].metrics.counts.evictions,
            }
            row["speedup"] = row["micco-optimal"] / row["groute"]
            result.rows.append(row)
    return result


def main(quick: bool = True) -> str:
    res = run(quick=quick)
    lines = [res.table().to_text(), ""]
    for dist in ("uniform", "gaussian"):
        lines.append(f"geomean speedup ({dist}): {res.geomean_speedup(dist):.2f}x")
    lines.append("paper: GFLOPS falls with oversubscription; geomeans 1.2x (uniform), 1.4x (gaussian)")
    return "\n".join(lines)
