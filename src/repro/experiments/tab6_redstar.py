"""Table VI — real many-body correlation functions in the Redstar analog.

Three meson-system correlators (a1_rhopi, f0d2, f0d4) run through the
full pipeline — Wick diagrams, graph contraction, stage partitioning —
on eight 32 GB devices with outputs kept resident (multi-stage reuse).
Reported: tensor size, total device memory of inputs + intermediates,
and MICCO-optimal speedup over Groute, against the published row.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import MiccoConfig
from repro.experiments.common import get_default_predictor, run_comparison
from repro.experiments.report import Table
from repro.redstar.datasets import GIB, REAL_WORLD_SPECS
from repro.redstar.pipeline import RedstarPipeline


@dataclass
class Tab6Result:
    rows: list[dict] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            "Table VI — Real correlation functions (8 GPUs, 16 time slices)",
            ["function", "N", "memory (GiB)", "graphs", "speedup", "paper speedup"],
        )
        for r in self.rows:
            t.add_row(
                r["name"], r["tensor_size"], r["memory_gib"], r["num_graphs"],
                r["speedup"], r["paper_speedup"],
            )
        return t


def run(
    *,
    functions=("a1_rhopi", "f0d2", "f0d4"),
    num_devices: int = 8,
    time_slices: int = 16,
    seed: int = 0,
    quick: bool = True,
    predictor=None,
) -> Tab6Result:
    """Run the three correlators through the scheduler line-up."""
    config = MiccoConfig(num_devices=num_devices, keep_outputs=True)
    if predictor is None:
        predictor = get_default_predictor(MiccoConfig(num_devices=num_devices), quick=quick, seed=seed)
    result = Tab6Result()
    for name in functions:
        factory, paper_n, paper_mem, paper_speedup = REAL_WORLD_SPECS[name]
        spec = factory(time_slices=time_slices)
        pipe = RedstarPipeline(spec, seed=seed)
        vectors = pipe.vectors()
        runs = run_comparison(vectors, config, predictor)
        speedup = runs["micco-optimal"].gflops / runs["groute"].gflops
        result.rows.append(
            {
                "name": name,
                "tensor_size": spec.tensor_size,
                "memory_gib": pipe.stats.total_bytes / GIB,
                "num_graphs": pipe.stats.num_graphs,
                "groute_gflops": runs["groute"].gflops,
                "micco_gflops": runs["micco-optimal"].gflops,
                "speedup": speedup,
                "paper_speedup": paper_speedup,
                "paper_memory_gib": paper_mem / GIB,
            }
        )
    return result


def main(quick: bool = True) -> str:
    res = run(quick=quick)
    lines = [res.table().to_text(), ""]
    lines.append("paper memory: 56.05 / 4645.12 / 4064.48 GiB; speedups 1.49 / 1.41 / 1.36")
    return "\n".join(lines)
