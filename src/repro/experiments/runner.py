"""Run-everything driver with machine-readable export.

``run_all`` executes every registered experiment and returns the
rendered reports; ``results_to_json`` turns the heterogeneous result
objects into one JSON document (rows where the experiment has rows,
matrices/scores where it doesn't) for CI dashboards or notebooks.
"""

from __future__ import annotations

import json
from pathlib import Path


def _jsonable(value):
    """Best-effort conversion of experiment payloads to JSON types."""
    import numpy as np

    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, complex):
        return {"real": value.real, "imag": value.imag}
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    # Dataclass-ish / result objects: take their public scalar fields.
    return str(value)


def result_to_dict(result) -> dict:
    """Serialize one experiment result object.

    Recognizes the conventions used across ``repro.experiments``:
    ``rows`` (most figures/tables), ``cases`` (Fig. 8), ``scores``
    (Table IV), ``names``/``matrix`` (Fig. 5), or a list of sub-results
    (ablations).
    """
    if isinstance(result, list):  # ablations return a list of results
        return {"ablations": [result_to_dict(r) for r in result]}
    out: dict = {"type": type(result).__name__}
    for attr in ("rows", "cases", "scores", "names"):
        if hasattr(result, attr):
            out[attr] = _jsonable(getattr(result, attr))
    if hasattr(result, "matrix"):
        out["matrix"] = _jsonable(result.matrix)
    if hasattr(result, "title"):
        out["title"] = result.title
    return out


def run_all(*, quick: bool = True, include=None, progress=print) -> dict[str, dict]:
    """Run every (or the selected) experiments.

    Returns ``{experiment id: {"text": rendered report, "data": dict}}``.
    """
    from repro.experiments import EXPERIMENTS

    names = list(EXPERIMENTS) if include is None else list(include)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")
    results: dict[str, dict] = {}
    for name in names:
        module = EXPERIMENTS[name]
        if progress:
            progress(f"[{name}] running...")
        result = module.run(quick=quick)
        if isinstance(result, list):
            text = "\n\n".join(r.table().to_text() for r in result)
        elif hasattr(result, "table"):
            text = result.table().to_text()
        else:  # pragma: no cover - no such experiment today
            text = str(result)
        results[name] = {"text": text, "data": result_to_dict(result)}
    return results


def save_results(results: dict[str, dict], path: str | Path) -> None:
    """Write the machine-readable half of ``run_all`` output to JSON."""
    payload = {name: entry["data"] for name, entry in results.items()}
    Path(path).write_text(json.dumps(payload, indent=1))
