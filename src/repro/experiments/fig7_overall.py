"""Fig. 7 — overall performance.

Throughput of Groute / MICCO-naive / MICCO-optimal over two data
distributions (Uniform, Gaussian), vector sizes 8–64 and repeated rates
25–100 %, at tensor size 384 on eight GPUs.  Blue stars in the paper
(MICCO-optimal / Groute speedup) are the ``speedup`` column here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import MiccoConfig
from repro.experiments.common import get_default_predictor, pressured_config, run_comparison
from repro.experiments.report import Table
from repro.workloads.synth import SyntheticWorkload, WorkloadParams

DISTRIBUTIONS = ("uniform", "gaussian")
VECTOR_SIZES = (8, 16, 32, 64)
REPEATED_RATES = (0.25, 0.5, 0.75, 1.0)


@dataclass
class Fig7Result:
    rows: list[dict] = field(default_factory=list)

    def geomean_speedup(self, distribution: str) -> float:
        sp = [r["speedup"] for r in self.rows if r["distribution"] == distribution]
        return float(np.exp(np.mean(np.log(sp)))) if sp else float("nan")

    def max_speedup(self) -> float:
        return max(r["speedup"] for r in self.rows)

    def table(self) -> Table:
        t = Table(
            "Fig. 7 — Overall performance (GFLOPS; speedup = MICCO-optimal / Groute)",
            ["dist", "vec", "rate%", "groute", "micco-naive", "micco-optimal", "speedup"],
        )
        for r in self.rows:
            t.add_row(
                r["distribution"],
                r["vector_size"],
                int(100 * r["repeated_rate"]),
                r["groute"],
                r["micco-naive"],
                r["micco-optimal"],
                r["speedup"],
            )
        return t


def run(
    *,
    distributions=DISTRIBUTIONS,
    vector_sizes=VECTOR_SIZES,
    repeated_rates=REPEATED_RATES,
    tensor_size: int = 384,
    num_devices: int = 8,
    num_vectors: int = 10,
    batch: int = 32,
    subscription: float | None = 0.9,
    seed: int = 7,
    quick: bool = True,
    predictor=None,
) -> Fig7Result:
    """Run the Fig. 7 sweep; see module docstring for the paper setup."""
    base = MiccoConfig(num_devices=num_devices)
    if predictor is None:
        predictor = get_default_predictor(base, quick=quick, seed=seed)
    result = Fig7Result()
    for dist in distributions:
        for vs in vector_sizes:
            for rate in repeated_rates:
                params = WorkloadParams(
                    vector_size=vs,
                    tensor_size=tensor_size,
                    repeated_rate=rate,
                    distribution=dist,
                    num_vectors=num_vectors,
                    batch=batch,
                )
                vectors = SyntheticWorkload(params, seed=seed).vectors()
                config = pressured_config(vectors, base, subscription)
                runs = run_comparison(vectors, config, predictor)
                row = {
                    "distribution": dist,
                    "vector_size": vs,
                    "repeated_rate": rate,
                    "groute": runs["groute"].gflops,
                    "micco-naive": runs["micco-naive"].gflops,
                    "micco-optimal": runs["micco-optimal"].gflops,
                }
                row["speedup"] = row["micco-optimal"] / row["groute"]
                row["speedup_naive"] = row["micco-naive"] / row["groute"]
                result.rows.append(row)
    return result


def main(quick: bool = True) -> str:
    res = run(quick=quick)
    lines = [res.table().to_text(), ""]
    for dist in DISTRIBUTIONS:
        lines.append(f"geomean speedup ({dist}): {res.geomean_speedup(dist):.2f}x")
    lines.append(f"max speedup: {res.max_speedup():.2f}x (paper: up to 2.25x, geomeans 1.57x/1.65x)")
    return "\n".join(lines)
