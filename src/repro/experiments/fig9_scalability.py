"""Fig. 9 — scalability: GFLOPS and speedup as GPUs grow 1→8.

Paper observations to reproduce in shape: GFLOPS grows sub-linearly
with device count (memory operations dominate at tensor size 384, and
more GPUs fragment the reusable working set), while MICCO's speedup
over Groute *increases* with device count (more devices → more wrong
placements available to the reuse-blind baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import MiccoConfig
from repro.experiments.common import get_default_predictor, pressured_config, run_comparison
from repro.experiments.report import Table
from repro.workloads.synth import SyntheticWorkload, WorkloadParams

DEVICE_COUNTS = (1, 2, 4, 8)


@dataclass
class Fig9Result:
    rows: list[dict] = field(default_factory=list)

    def series(self, distribution: str, system: str) -> list[float]:
        return [r[system] for r in self.rows if r["distribution"] == distribution]

    def table(self) -> Table:
        t = Table(
            "Fig. 9 — Scalability (GFLOPS)",
            ["dist", "gpus", "groute", "micco-naive", "micco-optimal", "speedup"],
        )
        for r in self.rows:
            t.add_row(
                r["distribution"], r["num_devices"], r["groute"],
                r["micco-naive"], r["micco-optimal"], r["speedup"],
            )
        return t


def run(
    *,
    device_counts=DEVICE_COUNTS,
    distributions=("uniform", "gaussian"),
    vector_size: int = 64,
    tensor_size: int = 384,
    repeated_rate: float = 0.5,
    num_vectors: int = 10,
    batch: int = 32,
    subscription: float | None = 0.9,
    seed: int = 7,
    quick: bool = True,
    predictor=None,
) -> Fig9Result:
    """Sweep the device count for both distributions."""
    result = Fig9Result()
    for dist in distributions:
        params = WorkloadParams(
            vector_size=vector_size,
            tensor_size=tensor_size,
            repeated_rate=repeated_rate,
            distribution=dist,
            num_vectors=num_vectors,
            batch=batch,
        )
        for n in device_counts:
            base = MiccoConfig(num_devices=n)
            cell_predictor = predictor or get_default_predictor(base, quick=quick, seed=seed)
            vectors = SyntheticWorkload(params, seed=seed).vectors()
            config = pressured_config(vectors, base, subscription)
            runs = run_comparison(vectors, config, cell_predictor)
            row = {
                "distribution": dist,
                "num_devices": n,
                "groute": runs["groute"].gflops,
                "micco-naive": runs["micco-naive"].gflops,
                "micco-optimal": runs["micco-optimal"].gflops,
            }
            row["speedup"] = row["micco-optimal"] / row["groute"]
            result.rows.append(row)
    return result


def main(quick: bool = True) -> str:
    res = run(quick=quick)
    lines = [res.table().to_text(), ""]
    for dist in ("uniform", "gaussian"):
        sp = res.series(dist, "speedup")
        lines.append(f"{dist}: speedup {sp[0]:.2f}x @1 GPU -> {sp[-1]:.2f}x @{DEVICE_COUNTS[-1]} GPUs")
    lines.append("paper: GFLOPS grows slowly (7877 -> 13043); speedup 1.18x @2 -> 1.68x @8")
    return "\n".join(lines)
