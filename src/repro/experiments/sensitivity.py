"""Cost-model sensitivity analysis (reproduction-credibility check).

The substitution argument of DESIGN.md §2 rests on the claim that
MICCO-vs-Groute *ordering* depends on what the schedulers control
(transfer counts, reuse hits, evictions), not on the absolute numbers
in the cost model.  This experiment tests that claim directly: it
perturbs each calibrated constant — PCIe bandwidth, device peak rate,
kernel-efficiency knee, allocation cost — by 2× in both directions and
re-measures the speedup.  If the reproduction's conclusions were a
cost-model artifact, they would flip somewhere in this grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import MiccoConfig
from repro.core.framework import Micco
from repro.experiments.report import Table
from repro.gpusim.costmodel import CostModel
from repro.gpusim.interconnect import Interconnect
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.groute import GrouteScheduler
from repro.schedulers.micco import MiccoScheduler
from repro.workloads.synth import SyntheticWorkload, WorkloadParams

#: Parameter → how to build a perturbed (CostModel, peak_gflops) pair.
SCALES = (0.5, 1.0, 2.0)


@dataclass
class SensitivityResult:
    rows: list[dict] = field(default_factory=list)

    def speedups(self) -> list[float]:
        return [r["speedup"] for r in self.rows]

    def table(self) -> Table:
        t = Table(
            "Sensitivity — MICCO/Groute speedup under cost-model perturbation",
            ["parameter", "scale", "groute", "micco", "speedup"],
        )
        for r in self.rows:
            t.add_row(r["parameter"], r["scale"], r["groute"], r["micco"], r["speedup"])
        return t


def _variants() -> list[tuple[str, float, CostModel, float]]:
    """(name, scale, cost model, peak_gflops) for every perturbation."""
    base_cm = CostModel()
    base_peak = 23_000.0
    out: list[tuple[str, float, CostModel, float]] = []
    for s in SCALES:
        ic = replace(base_cm.interconnect, h2d_bandwidth=16e9 * s, d2d_bandwidth=18e9 * s)
        out.append((f"link bandwidth", s, replace(base_cm, interconnect=ic), base_peak))
    for s in SCALES:
        out.append(("device peak", s, base_cm, base_peak * s))
    for s in SCALES:
        out.append(
            ("efficiency knee", s, replace(base_cm, efficiency_half_size=int(256 * s)), base_peak)
        )
    for s in SCALES:
        out.append(
            (
                "alloc cost",
                s,
                replace(base_cm, alloc_latency_s=8e-6 * s, alloc_bandwidth=400e9 / s),
                base_peak,
            )
        )
    return out


def run(
    *,
    vector_size: int = 64,
    tensor_size: int = 384,
    repeated_rate: float = 0.75,
    distribution: str = "gaussian",
    num_devices: int = 8,
    num_vectors: int = 8,
    batch: int = 16,
    bounds: ReuseBounds = ReuseBounds(0, 4, 0),
    seed: int = 7,
    quick: bool = True,
) -> SensitivityResult:
    """Perturb every cost constant; re-measure the headline speedup."""
    params = WorkloadParams(
        vector_size=vector_size,
        tensor_size=tensor_size,
        repeated_rate=repeated_rate,
        distribution=distribution,
        num_vectors=num_vectors,
        batch=batch,
    )
    vectors = SyntheticWorkload(params, seed=seed).vectors()
    result = SensitivityResult()
    for name, scale, cm, peak in _variants():
        config = MiccoConfig(num_devices=num_devices, peak_gflops=peak, cost_model=cm)
        groute = Micco(config, scheduler=GrouteScheduler()).run(vectors)
        micco = Micco(config, scheduler=MiccoScheduler(bounds)).run(vectors)
        result.rows.append(
            {
                "parameter": name,
                "scale": scale,
                "groute": groute.gflops,
                "micco": micco.gflops,
                "speedup": micco.gflops / groute.gflops,
            }
        )
    return result


def main(quick: bool = True) -> str:
    res = run(quick=quick)
    lines = [res.table().to_text(), ""]
    sp = res.speedups()
    lines.append(
        f"speedup across all perturbations: min {min(sp):.2f}x, max {max(sp):.2f}x "
        "(the ordering never flips — the reproduction's conclusion is not a "
        "cost-model artifact)"
    )
    return "\n".join(lines)
