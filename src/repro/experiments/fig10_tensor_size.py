"""Fig. 10 — impact of tensor size (128 → 768).

Vector size 64, repeated rate 50 %.  The paper reports MICCO ahead of
Groute at every size (speedups 1.35–1.92×) with GFLOPS strongly
increasing in tensor size (kernel arithmetic intensity grows as N³
against N² bytes moved).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import MiccoConfig
from repro.experiments.common import get_default_predictor, pressured_config, run_comparison
from repro.experiments.report import Table
from repro.workloads.synth import SyntheticWorkload, WorkloadParams

TENSOR_SIZES = (128, 256, 384, 768)


@dataclass
class Fig10Result:
    rows: list[dict] = field(default_factory=list)

    def series(self, distribution: str, system: str) -> list[float]:
        return [r[system] for r in self.rows if r["distribution"] == distribution]

    def table(self) -> Table:
        t = Table(
            "Fig. 10 — Impact of tensor size (GFLOPS)",
            ["dist", "N", "groute", "micco-naive", "micco-optimal", "speedup"],
        )
        for r in self.rows:
            t.add_row(
                r["distribution"], r["tensor_size"], r["groute"],
                r["micco-naive"], r["micco-optimal"], r["speedup"],
            )
        return t


def run(
    *,
    tensor_sizes=TENSOR_SIZES,
    distributions=("uniform", "gaussian"),
    vector_size: int = 64,
    repeated_rate: float = 0.5,
    num_devices: int = 8,
    num_vectors: int = 10,
    batch: int = 32,
    subscription: float | None = 0.9,
    seed: int = 7,
    quick: bool = True,
    predictor=None,
) -> Fig10Result:
    """Sweep tensor size for both distributions."""
    base = MiccoConfig(num_devices=num_devices)
    if predictor is None:
        predictor = get_default_predictor(base, quick=quick, seed=seed)
    result = Fig10Result()
    for dist in distributions:
        for n in tensor_sizes:
            params = WorkloadParams(
                vector_size=vector_size,
                tensor_size=n,
                repeated_rate=repeated_rate,
                distribution=dist,
                num_vectors=num_vectors,
                batch=batch,
            )
            vectors = SyntheticWorkload(params, seed=seed).vectors()
            config = pressured_config(vectors, base, subscription)
            runs = run_comparison(vectors, config, predictor)
            row = {
                "distribution": dist,
                "tensor_size": n,
                "groute": runs["groute"].gflops,
                "micco-naive": runs["micco-naive"].gflops,
                "micco-optimal": runs["micco-optimal"].gflops,
            }
            row["speedup"] = row["micco-optimal"] / row["groute"]
            result.rows.append(row)
    return result


def main(quick: bool = True) -> str:
    res = run(quick=quick)
    lines = [res.table().to_text(), ""]
    sp = [r["speedup"] for r in res.rows]
    lines.append(f"speedup range: {min(sp):.2f}x - {max(sp):.2f}x (paper: 1.35x - 1.92x)")
    return "\n".join(lines)
