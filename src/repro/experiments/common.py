"""Shared experiment plumbing: scheduler line-ups and predictor caching.

Every experiment compares the same three systems on identical simulated
hardware (the paper's line-up):

* ``groute``        — earliest-available-device baseline,
* ``micco-naive``   — MICCO heuristic, reuse bounds pinned to zero,
* ``micco-optimal`` — MICCO heuristic with per-vector predicted bounds.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.core.config import MiccoConfig
from repro.core.framework import Micco
from repro.core.session import RunResult
from repro.ml.predictor import ReuseBoundPredictor, train_default_predictor
from repro.schedulers.groute import GrouteScheduler
from repro.tensor.spec import VectorSpec
from repro.workloads.oversub import capacity_for_oversubscription

#: In-process predictor cache keyed by training parameters.
_PREDICTOR_CACHE: dict[tuple, ReuseBoundPredictor] = {}


def cache_dir() -> Path:
    d = Path.home() / ".cache" / "repro-micco"
    d.mkdir(parents=True, exist_ok=True)
    return d


def get_default_predictor(
    config: MiccoConfig | None = None,
    *,
    quick: bool = True,
    seed: int = 0,
    use_disk_cache: bool = True,
) -> ReuseBoundPredictor:
    """A trained reuse-bound predictor, cached in-process and on disk.

    ``quick=True`` trains a reduced model (fewer tuning samples and
    trees) suitable for benchmark targets; ``quick=False`` reproduces
    the paper's full 300-sample training run.
    """
    config = config or MiccoConfig()
    n_samples = 60 if quick else 300
    n_estimators = 40 if quick else 150
    key = (config.num_devices, n_samples, n_estimators, seed)
    pred = _PREDICTOR_CACHE.get(key)
    if pred is not None:
        return pred

    disk_key = hashlib.sha256(json.dumps(key).encode()).hexdigest()[:16]
    disk_path = cache_dir() / f"predictor-{disk_key}.json"
    if use_disk_cache and disk_path.exists():
        from repro.ml.persistence import load_predictor

        pred = load_predictor(disk_path)
        _PREDICTOR_CACHE[key] = pred
        return pred

    pred, _ts = train_default_predictor(
        config, n_samples=n_samples, seed=seed, n_estimators=n_estimators
    )
    _PREDICTOR_CACHE[key] = pred
    if use_disk_cache:
        from repro.ml.persistence import save_predictor

        save_predictor(pred, disk_path)
    return pred


def pressured_config(
    vectors: list[VectorSpec], base: MiccoConfig, subscription: float | None
) -> MiccoConfig:
    """Derive per-cell device memory for a target subscription level.

    ``None`` keeps the base (paper-hardware) capacity.
    """
    if subscription is None:
        return base
    cap = capacity_for_oversubscription(vectors, base.num_devices, subscription)
    return base.with_(memory_bytes=cap)


def run_comparison(
    vectors: list[VectorSpec],
    config: MiccoConfig,
    predictor: ReuseBoundPredictor | None = None,
    *,
    include=("groute", "micco-naive", "micco-optimal"),
) -> dict[str, RunResult]:
    """Run the standard scheduler line-up on one stream."""
    results: dict[str, RunResult] = {}
    for name in include:
        if name == "groute":
            system = Micco.baseline(GrouteScheduler(), config)
        elif name == "micco-naive":
            system = Micco.naive(config)
        elif name == "micco-optimal":
            system = Micco.optimal(predictor or get_default_predictor(config), config)
        else:
            raise ValueError(f"unknown system {name!r}")
        results[name] = system.run(vectors)
    return results
