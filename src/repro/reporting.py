"""Common report surface shared by every result object.

The CLI, tests and downstream tooling used to special-case each report
shape (``ServeResult`` vs ``LatencyReport`` vs ``FaultStats``).  The
:class:`Report` protocol unifies them: anything reportable exposes

* ``summary() -> dict`` — flat, JSON-ready headline numbers, and
* ``to_json(path)``     — write the full report to disk.

Implementations: :class:`~repro.serve.server.ServeResult`,
:class:`~repro.serve.slo.LatencyReport`,
:class:`~repro.faults.recovery.FaultStats`.  Use
``isinstance(obj, Report)`` (runtime-checkable) to accept any of them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Protocol, runtime_checkable


@runtime_checkable
class Report(Protocol):
    """Structural type of every report object in the library."""

    def summary(self) -> dict:
        """Flat dict of headline numbers (JSON-ready, deterministic)."""
        ...  # pragma: no cover - protocol body

    def to_json(self, path) -> None:
        """Write the full report (summary + detail records) to ``path``."""
        ...  # pragma: no cover - protocol body


def dump_json(path: str | Path, payload: dict) -> None:
    """Write ``payload`` with the library-wide JSON convention.

    ``indent=2`` and insertion-ordered keys: two runs that build the
    same payload produce byte-identical files (the CI determinism
    checks diff these directly).
    """
    Path(path).write_text(json.dumps(payload, indent=2))
