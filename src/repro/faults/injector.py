"""Runtime fault injection: arms planned faults as simulated time passes.

The :class:`FaultInjector` sits between a :class:`~repro.faults.plan.FaultPlan`
and the machinery that experiences the faults:

* the *driver* (the serving loop, or any clock owner) calls
  :meth:`poll` as simulated time advances; due transient/transfer
  faults are armed against their device, straggler windows open, and
  due ``device_lost``/``node_lost`` events are returned for the driver
  to apply (killing a device — let alone a whole failure domain —
  needs cluster + scheduler + topology cooperation the injector does
  not have);
* the *engine* consults :meth:`take_kernel_fault` /
  :meth:`take_transfer_fault` at each operation (consuming one armed
  failure per call) and :meth:`compute_factor` for straggler slowdowns.

All state transitions are functions of the plan and the polled clock,
so a seeded plan replays identically.
"""

from __future__ import annotations

from collections import deque

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.faults.recovery import FaultStats
from repro.integrity import mix64

_2_64 = float(1 << 64)


class FaultInjector:
    """Consumable runtime view of one :class:`FaultPlan`.

    One injector serves one run; build a fresh one per run (its armed
    faults and clock are consumed as the run progresses).

    Parameters
    ----------
    plan:
        The fault schedule to arm.
    num_devices:
        When given, every plan event's device id is validated against
        ``0..num_devices-1`` up front — a hand-written plan targeting a
        device the cluster does not have raises
        :class:`~repro.errors.ConfigurationError` here instead of
        failing late (or silently arming faults nothing ever consumes).
    """

    def __init__(self, plan: FaultPlan, num_devices: int | None = None):
        if num_devices is not None:
            plan.validate_devices(num_devices)
        self.plan = plan
        # Expand multi-cycle node_flap events into one single-cycle event
        # per down phase so each loss/restore pair is polled (and counted
        # in ``injected``) on its own clock tick.
        expanded: list[FaultEvent] = []
        for event in plan.events:
            if event.kind is FaultKind.NODE_FLAP and event.count > 1:
                period = event.period_s or 2.0 * event.duration_s
                for i in range(event.count):
                    expanded.append(
                        FaultEvent(
                            FaultKind.NODE_FLAP,
                            event.time_s + i * period,
                            event.device,
                            duration_s=event.duration_s,
                            period_s=period,
                        )
                    )
            else:
                expanded.append(event)
        expanded.sort(key=lambda e: (e.time_s, e.device, e.kind.value))
        self._pending = deque(expanded)
        self.stats = FaultStats()
        #: Current simulated time, advanced by :meth:`poll`.
        self.now = 0.0
        # device -> remaining consecutive failures to inject.
        self._armed_kernel: dict[int, int] = {}
        self._armed_transfer: dict[int, int] = {}
        # (device, start_s, end_s, slow_factor) active/known windows.
        self._slow: list[tuple[int, float, float, float]] = []
        #: Devices whose node lost its inter-node links (``link_lost``);
        #: they stay alive but are D2D-unreachable from other nodes.
        self._linkless: set[int] = set()
        #: (device, start_s, end_s) heartbeat-silence windows — the
        #: device computes normally but its node reports nothing.
        self._silent: list[tuple[int, float, float]] = []
        #: (device, start_s, end_s, probability, salt) silent-corruption
        #: windows — kernels on the device succeed but may emit wrong
        #: outputs (see :meth:`take_corruption`).
        self._corrupt: list[tuple[int, float, float, float, int]] = []
        # device -> corruption draws taken so far (advances only while a
        # window is active, so the draw sequence is a pure function of
        # the plan and the kernels executed inside windows).
        self._corrupt_seq: dict[int, int] = {}
        self._corrupt_salt = 0

    # ------------------------------------------------------------ driver side
    def poll(self, now: float) -> list[FaultEvent]:
        """Advance to ``now``; arm due faults, return due device losses.

        Transient/transfer faults arm against their device (the next
        ``count`` matching operations fail); straggler windows open.
        ``device_lost``, ``node_lost`` and ``link_lost`` events are
        *returned* — the driver must apply them (clear residency,
        re-schedule orphans, expand a node loss to its failure domain
        via the topology) and then call :meth:`note_device_lost` per
        dead device (or :meth:`note_link_lost` for a degraded node) so
        availability accounting sees them.
        """
        self.now = max(self.now, now)
        losses: list[FaultEvent] = []
        while self._pending and self._pending[0].time_s <= now:
            fault = self._pending.popleft()
            self.stats.injected[fault.kind.value] += 1
            if fault.kind is FaultKind.TRANSIENT:
                self._armed_kernel[fault.device] = (
                    self._armed_kernel.get(fault.device, 0) + fault.count
                )
            elif fault.kind is FaultKind.TRANSFER:
                self._armed_transfer[fault.device] = (
                    self._armed_transfer.get(fault.device, 0) + fault.count
                )
            elif fault.kind is FaultKind.STRAGGLER:
                window = (
                    fault.device,
                    fault.time_s,
                    fault.time_s + fault.duration_s,
                    fault.slow_factor,
                )
                self._slow.append(window)
                self.stats.straggler_windows.append(window)
            elif fault.kind is FaultKind.DATA_CORRUPTION:
                self._corrupt.append(
                    (
                        fault.device,
                        fault.time_s,
                        fault.time_s + fault.duration_s,
                        fault.probability,
                        self._corrupt_salt,
                    )
                )
                self._corrupt_salt += 1
            else:  # DEVICE_LOST / NODE_LOST / LINK_LOST / gray / bitflip: driver applies
                losses.append(fault)
        return losses

    def drain(self) -> list[FaultEvent]:
        """Arm every remaining fault regardless of time (end-of-run flush)."""
        return self.poll(float("inf")) if self._pending else []

    def note_device_lost(self, device: int, time_s: float, orphans: int) -> None:
        """Record an applied device loss for availability accounting."""
        self.stats.device_losses += 1
        self.stats.orphaned_tensors += orphans
        self.stats.lost_at.setdefault(device, float(time_s))
        self.stats.open_down_window(device, time_s)
        # A dead device can no longer fault, straggle or corrupt.
        self._armed_kernel.pop(device, None)
        self._armed_transfer.pop(device, None)
        self._slow = [w for w in self._slow if w[0] != device]
        self._corrupt = [w for w in self._corrupt if w[0] != device]

    def note_device_restored(self, device: int, time_s: float) -> None:
        """Record an applied restore (``node_flap`` up phase)."""
        self.stats.device_restores += 1
        self.stats.close_down_window(device, time_s)

    def note_heartbeat_loss(self, devices, start_s: float, end_s: float) -> None:
        """Record an applied gray silence: ``devices`` stop reporting.

        The devices keep computing — only the control-plane signal is
        lost for ``[start_s, end_s)``; health monitoring has to notice.
        """
        self.stats.heartbeat_losses += 1
        for d in devices:
            self._silent.append((int(d), float(start_s), float(end_s)))

    def silent_devices(self, now: float) -> frozenset[int]:
        """Devices inside an active heartbeat-silence window at ``now``."""
        return frozenset(
            d for d, start, end in self._silent if start <= now < end
        )

    def note_link_lost(self, devices, time_s: float) -> None:
        """Record an applied link loss: ``devices`` are D2D-isolated.

        The devices stay alive — only their node's inter-node links are
        gone.  Subsequent cross-node fetches that can only be served by
        an unreachable holder fall back to host staging (see
        :meth:`reachable_holders`).
        """
        self.stats.link_losses += 1
        self._linkless.update(int(d) for d in devices)

    @property
    def linkless_devices(self) -> frozenset[int]:
        """Devices currently isolated by ``link_lost`` faults."""
        return frozenset(self._linkless)

    def reachable_holders(self, holders, dst: int, topology) -> frozenset:
        """Holders of a tensor that ``dst`` can still reach over D2D.

        A holder is reachable when it shares ``dst``'s node (intra-node
        links survive a ``link_lost``) or when *neither* endpoint sits
        on a link-degraded node.
        """
        return frozenset(
            h
            for h in holders
            if topology.same_node(h, dst)
            or (h not in self._linkless and dst not in self._linkless)
        )

    # ------------------------------------------------------------ engine side
    def take_kernel_fault(self, device: int) -> bool:
        """Consume one armed kernel failure for ``device`` (True if it fails)."""
        return self._take(self._armed_kernel, device)

    def take_transfer_fault(self, device: int) -> bool:
        """Consume one armed transfer failure for ``device``."""
        return self._take(self._armed_transfer, device)

    @staticmethod
    def _take(armed: dict[int, int], device: int) -> bool:
        left = armed.get(device, 0)
        if left <= 0:
            return False
        if left == 1:
            del armed[device]
        else:
            armed[device] = left - 1
        return True

    def take_corruption(self, device: int) -> bool:
        """Draw one silent-corruption Bernoulli for a kernel on ``device``.

        Returns True when the kernel's output should be silently wrong.
        Outside any active ``data_corruption`` window the draw sequence
        does not advance, so runs that never enter a window consume no
        randomness and a seeded plan replays identically regardless of
        how many kernels run outside its windows.  Overlapping windows
        draw independently (any hit corrupts).
        """
        active = [
            (prob, salt)
            for dev, start, end, prob, salt in self._corrupt
            if dev == device and start <= self.now < end
        ]
        if not active:
            return False
        n = self._corrupt_seq.get(device, 0)
        self._corrupt_seq[device] = n + 1
        return any(
            mix64(0x5EEDC0DE, salt, device, n) < prob * _2_64
            for prob, salt in active
        )

    def compute_factor(self, device: int) -> float:
        """Kernel-time multiplier for ``device`` at the polled clock.

        Overlapping straggler windows compound multiplicatively.
        """
        factor = 1.0
        for dev, start, end, slow in self._slow:
            if dev == device and start <= self.now < end:
                factor *= slow
        return factor
