"""Declarative fault plans: what breaks, where, and when.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent` records —
pure data, no runtime behaviour (that lives in
:mod:`repro.faults.injector`).  Plans are either written by hand /
loaded from JSON (reproducing a specific incident) or generated from a
seed via :meth:`FaultPlan.generate`, which draws every timestamp and
device through :func:`repro.utils.rng.as_generator` so identical seeds
give identical fault timelines — chaos runs are replayable bit for bit.

Eight fault kinds model the failure modes a long-lived serving cluster
actually sees:

* ``transient``   — a pair's kernel execution fails and must retry,
* ``device_lost`` — a device (and every tensor resident on it) vanishes
  permanently,
* ``straggler``   — a device's effective GFLOPs degrade for a window,
* ``transfer``    — a D2D/H2D fetch fails and is re-fetched from host,
* ``node_lost``   — a *correlated* failure domain: every device in the
  node hosting ``device`` dies at once (rack power loss, network
  partition).  The blast radius is resolved at apply time through
  :meth:`~repro.gpusim.topology.Topology.node_of`; without a topology
  the node degenerates to the single named device,
* ``link_lost``   — partial-node degradation: the node hosting
  ``device`` loses its inter-node links.  Its devices stay alive and
  keep computing, but D2D fetches crossing the severed links are staged
  through the host instead, and the sharded router routes around the
  degraded node.

Two *gray* kinds model failures that are never announced — the control
plane has to infer them from missing heartbeats (see
:mod:`repro.serve.health`):

* ``heartbeat_loss`` — the node hosting ``device`` stays alive and
  keeps computing, but stops reporting for ``duration_s`` seconds: no
  heartbeats, no digests.  Purely a control-plane signal loss,
* ``node_flap``   — repeated short loss/restore cycles: the node's
  devices all fail, come back cold ``duration_s`` later, and repeat
  ``count`` times every ``period_s`` seconds (default ``2×duration_s``).
  Unlike ``node_lost`` the failure is *not* announced to the router —
  its digest merely goes stale while the node is down.

Two *integrity* kinds model silent data corruption — the device reports
success but the answer is wrong (see :mod:`repro.integrity`):

* ``data_corruption`` — for ``duration_s`` seconds starting at
  ``time_s``, every contraction ``device`` executes silently corrupts
  its output with probability ``probability`` (a deterministic hash
  draw per kernel, replayable bit for bit),
* ``tensor_bitflip`` — at ``time_s`` one tensor copy resident on
  ``device`` is corrupted in place; every later pair that consumes the
  copy (directly or via D2D propagation) inherits the taint.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from enum import Enum
from pathlib import Path

from repro.errors import ConfigurationError
from repro.utils.rng import as_generator


class FaultKind(str, Enum):
    """The ten injectable failure modes."""

    TRANSIENT = "transient"
    DEVICE_LOST = "device_lost"
    STRAGGLER = "straggler"
    TRANSFER = "transfer"
    NODE_LOST = "node_lost"
    LINK_LOST = "link_lost"
    HEARTBEAT_LOSS = "heartbeat_loss"
    NODE_FLAP = "node_flap"
    DATA_CORRUPTION = "data_corruption"
    TENSOR_BITFLIP = "tensor_bitflip"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Parameters
    ----------
    kind:
        Failure mode (see :class:`FaultKind`).
    time_s:
        Simulated timestamp at which the fault becomes active.
    device:
        Target device id.  For ``node_lost`` this names *any* device of
        the doomed node; the whole node containing it fails atomically
        (grouping via :meth:`~repro.gpusim.topology.Topology.node_of`).
    duration_s:
        Window length: straggler slowdown window, ``heartbeat_loss``
        silence window, or ``node_flap`` down time per cycle (ignored
        for other kinds).
    slow_factor:
        Straggler kernel-time multiplier, > 1 (ignored otherwise).
    count:
        Consecutive failures to inject for ``transient``/``transfer``
        faults before the operation succeeds again, or loss/restore
        cycles for ``node_flap``.
    period_s:
        ``node_flap`` cycle period — down phases start every
        ``period_s`` seconds.  0 (the default) means ``2 × duration_s``
        (equal down and up time); ignored for other kinds.
    probability:
        ``data_corruption`` per-kernel corruption probability over the
        window, in ``(0, 1]``.  Must stay 0 for every other kind.
    """

    kind: FaultKind
    time_s: float
    device: int
    duration_s: float = 0.0
    slow_factor: float = 1.0
    count: int = 1
    period_s: float = 0.0
    probability: float = 0.0

    def __post_init__(self):
        try:
            object.__setattr__(self, "kind", FaultKind(self.kind))
        except ValueError:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{[k.value for k in FaultKind]}"
            ) from None
        if self.time_s < 0:
            raise ConfigurationError(f"fault time_s must be >= 0, got {self.time_s}")
        if self.device < 0:
            raise ConfigurationError(f"fault device must be >= 0, got {self.device}")
        if self.count < 1:
            raise ConfigurationError(f"fault count must be >= 1, got {self.count}")
        if self.period_s < 0:
            raise ConfigurationError(f"fault period_s must be >= 0, got {self.period_s}")
        if self.kind is FaultKind.STRAGGLER:
            if self.duration_s <= 0:
                raise ConfigurationError(
                    f"straggler duration_s must be > 0, got {self.duration_s}"
                )
            if self.slow_factor <= 1.0:
                raise ConfigurationError(
                    f"straggler slow_factor must be > 1, got {self.slow_factor}"
                )
        if self.kind is FaultKind.HEARTBEAT_LOSS and self.duration_s <= 0:
            raise ConfigurationError(
                f"heartbeat_loss duration_s must be > 0, got {self.duration_s}"
            )
        if self.kind is FaultKind.NODE_FLAP:
            if self.duration_s <= 0:
                raise ConfigurationError(
                    f"node_flap duration_s must be > 0, got {self.duration_s}"
                )
            if self.period_s and self.period_s < self.duration_s:
                raise ConfigurationError(
                    f"node_flap period_s must be >= duration_s "
                    f"({self.duration_s}), got {self.period_s}"
                )
        if self.kind is FaultKind.DATA_CORRUPTION:
            if self.duration_s <= 0:
                raise ConfigurationError(
                    f"data_corruption duration_s must be > 0, got {self.duration_s}"
                )
            if not 0 < self.probability <= 1:
                raise ConfigurationError(
                    f"data_corruption probability must be in (0, 1], "
                    f"got {self.probability}"
                )
        elif self.probability != 0.0:
            raise ConfigurationError(
                f"probability is only meaningful for data_corruption events, "
                f"got {self.probability} on a {self.kind.value} event"
            )

    def to_dict(self) -> dict:
        d = asdict(self)
        d["kind"] = self.kind.value
        return d


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-sorted fault schedule."""

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self):
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.time_s, e.device, e.kind.value))
        )
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def of_kind(self, kind: FaultKind | str) -> list[FaultEvent]:
        kind = FaultKind(kind)
        return [e for e in self.events if e.kind is kind]

    def validate_devices(self, num_devices: int) -> None:
        """Check every event targets a device inside ``0..num_devices-1``.

        Hand-written JSON plans can name devices the cluster does not
        have (device 12 on an 8-GPU pool); catching that when the
        injector arms the plan turns a late silent no-op into an
        immediate :class:`~repro.errors.ConfigurationError` naming the
        offending event.
        """
        if num_devices < 1:
            raise ConfigurationError(f"num_devices must be >= 1, got {num_devices}")
        for event in self.events:
            if event.device >= num_devices:
                raise ConfigurationError(
                    f"{event.kind.value} fault event targets device "
                    f"{event.device} but the cluster has {num_devices} devices "
                    f"(0..{num_devices - 1}): {event.to_dict()}"
                )

    # ------------------------------------------------------------ generation
    @classmethod
    def generate(
        cls,
        seed,
        *,
        num_devices: int,
        horizon_s: float,
        n_transient: int = 2,
        n_transfer: int = 2,
        n_straggler: int = 1,
        n_device_lost: int = 1,
        n_node_lost: int = 0,
        n_link_lost: int = 0,
        n_heartbeat_loss: int = 0,
        n_node_flap: int = 0,
        n_data_corruption: int = 0,
        n_tensor_bitflip: int = 0,
        straggler_factor: float = 4.0,
        straggler_window_frac: float = 0.25,
        silence_window_frac: float = 0.25,
        flap_cycles: int = 2,
        flap_down_frac: float = 0.05,
        corruption_prob: float = 0.5,
        corruption_window_frac: float = 0.25,
    ) -> "FaultPlan":
        """Draw a random plan over ``[0, horizon_s)`` from ``seed``.

        Device-loss targets are sampled *without replacement* and capped
        at ``num_devices - 1`` so at least one device always survives —
        a plan that kills the whole pool is a configuration error, not
        chaos.  Stragglers slow a device by ``straggler_factor`` for a
        window of ``straggler_window_frac × horizon_s``.  Node losses
        (``n_node_lost``) target a uniformly drawn device each; the
        blast radius — every device sharing that device's node — is
        resolved at apply time from the run's topology, so the generator
        cannot (and does not try to) guarantee survivors across domains.
        Link losses (``n_link_lost``) likewise target a uniformly drawn
        device; the node containing it keeps computing but loses its
        inter-node links.  Gray faults: heartbeat losses
        (``n_heartbeat_loss``) silence a uniformly drawn device's node
        for ``silence_window_frac × horizon_s``; node flaps
        (``n_node_flap``) cycle a node down/up ``flap_cycles`` times,
        ``flap_down_frac × horizon_s`` down per cycle with equal up
        time between cycles.  Integrity faults: data corruptions
        (``n_data_corruption``) silently corrupt a uniformly drawn
        device's kernel outputs with probability ``corruption_prob``
        for a ``corruption_window_frac × horizon_s`` window; tensor
        bitflips (``n_tensor_bitflip``) corrupt one resident tensor
        copy in place on a uniformly drawn device.
        """
        if num_devices < 1:
            raise ConfigurationError(f"num_devices must be >= 1, got {num_devices}")
        if horizon_s <= 0:
            raise ConfigurationError(f"horizon_s must be > 0, got {horizon_s}")
        for name, n in (
            ("n_transient", n_transient),
            ("n_transfer", n_transfer),
            ("n_straggler", n_straggler),
            ("n_device_lost", n_device_lost),
            ("n_node_lost", n_node_lost),
            ("n_link_lost", n_link_lost),
            ("n_heartbeat_loss", n_heartbeat_loss),
            ("n_node_flap", n_node_flap),
            ("n_data_corruption", n_data_corruption),
            ("n_tensor_bitflip", n_tensor_bitflip),
        ):
            if n < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {n}")
        if n_data_corruption and not 0 < corruption_prob <= 1:
            raise ConfigurationError(
                f"corruption_prob must be in (0, 1], got {corruption_prob}"
            )
        rng = as_generator(seed)
        events: list[FaultEvent] = []

        def times(n: int) -> list[float]:
            return [float(t) for t in rng.uniform(0.0, horizon_s, size=n)]

        for t in times(n_transient):
            events.append(
                FaultEvent(
                    FaultKind.TRANSIENT,
                    t,
                    int(rng.integers(num_devices)),
                    count=int(rng.integers(1, 3)),
                )
            )
        for t in times(n_transfer):
            events.append(
                FaultEvent(
                    FaultKind.TRANSFER,
                    t,
                    int(rng.integers(num_devices)),
                    count=int(rng.integers(1, 3)),
                )
            )
        for t in times(n_straggler):
            events.append(
                FaultEvent(
                    FaultKind.STRAGGLER,
                    t,
                    int(rng.integers(num_devices)),
                    duration_s=straggler_window_frac * horizon_s,
                    slow_factor=straggler_factor,
                )
            )
        n_lost = min(n_device_lost, max(num_devices - 1, 0))
        victims = rng.permutation(num_devices)[:n_lost]
        for t, dev in zip(times(n_lost), victims):
            events.append(FaultEvent(FaultKind.DEVICE_LOST, t, int(dev)))
        for t in times(n_node_lost):
            events.append(
                FaultEvent(FaultKind.NODE_LOST, t, int(rng.integers(num_devices)))
            )
        for t in times(n_link_lost):
            events.append(
                FaultEvent(FaultKind.LINK_LOST, t, int(rng.integers(num_devices)))
            )
        for t in times(n_heartbeat_loss):
            events.append(
                FaultEvent(
                    FaultKind.HEARTBEAT_LOSS,
                    t,
                    int(rng.integers(num_devices)),
                    duration_s=silence_window_frac * horizon_s,
                )
            )
        flap_down = flap_down_frac * horizon_s
        for t in times(n_node_flap):
            events.append(
                FaultEvent(
                    FaultKind.NODE_FLAP,
                    t,
                    int(rng.integers(num_devices)),
                    duration_s=flap_down,
                    count=max(flap_cycles, 1),
                    period_s=2.0 * flap_down,
                )
            )
        for t in times(n_data_corruption):
            events.append(
                FaultEvent(
                    FaultKind.DATA_CORRUPTION,
                    t,
                    int(rng.integers(num_devices)),
                    duration_s=corruption_window_frac * horizon_s,
                    probability=corruption_prob,
                )
            )
        for t in times(n_tensor_bitflip):
            events.append(
                FaultEvent(
                    FaultKind.TENSOR_BITFLIP,
                    t,
                    int(rng.integers(num_devices)),
                )
            )
        return cls(tuple(events))

    # ----------------------------------------------------------- persistence
    def to_dicts(self) -> list[dict]:
        return [e.to_dict() for e in self.events]

    @classmethod
    def from_dicts(cls, records) -> "FaultPlan":
        """Build a plan from plain dicts, rejecting malformed records.

        Every record must be a dict carrying only :class:`FaultEvent`
        fields; anything else (extra keys, wrong types, unknown kinds,
        out-of-range values) raises
        :class:`~repro.errors.ConfigurationError` instead of tracing
        back — corrupt plans are a user error, not a crash.
        """
        if isinstance(records, (str, bytes)) or not hasattr(records, "__iter__"):
            raise ConfigurationError(
                f"fault plan records must be a list of objects, got {records!r}"
            )
        known = {
            "kind", "time_s", "device", "duration_s", "slow_factor", "count",
            "period_s", "probability",
        }
        events = []
        for i, r in enumerate(records):
            if not isinstance(r, dict):
                raise ConfigurationError(
                    f"fault event {i} must be a JSON object, got {r!r}"
                )
            unknown = set(r) - known
            if unknown:
                raise ConfigurationError(
                    f"fault event {i} has unknown keys {sorted(unknown)}; "
                    f"expected a subset of {sorted(known)}"
                )
            try:
                events.append(FaultEvent(**r))
            except TypeError as exc:
                raise ConfigurationError(f"fault event {i} is malformed: {exc}") from None
            except ConfigurationError as exc:
                raise ConfigurationError(f"fault event {i}: {exc}") from None
        return cls(tuple(events))

    def to_json(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps({"faults": self.to_dicts()}, indent=2))

    @classmethod
    def from_json(cls, path: str | Path) -> "FaultPlan":
        """Load a plan written by :meth:`to_json` (or a bare event list)."""
        payload = json.loads(Path(path).read_text())
        if isinstance(payload, dict):
            if "faults" not in payload:
                raise ConfigurationError(
                    f"fault plan {path} must be {{'faults': [...]}} or a bare "
                    f"list, got an object with keys {sorted(payload)}"
                )
            records = payload["faults"]
        else:
            records = payload
        return cls.from_dicts(records)
