"""Fault injection and recovery for chaos-hardened scheduling.

The paper's evaluation assumes eight healthy GPUs for the whole run; a
serving cluster does not get that luxury.  This package injects seeded,
deterministic faults into the simulator — transient kernel failures,
permanent device loss, stragglers, transfer failures — and provides the
recovery policy and accounting that let
:class:`~repro.serve.server.MiccoServer` keep serving on a shrinking
device pool:

* :mod:`repro.faults.plan` — declarative :class:`FaultPlan` (seeded
  generation, JSON round-trip, correlated ``node_lost`` failure
  domains),
* :mod:`repro.faults.injector` — :class:`FaultInjector`, the runtime
  state machine consulted by the engine and the serving loop,
* :mod:`repro.faults.recovery` — :class:`RetryPolicy` (exponential
  backoff in simulated time) and :class:`FaultStats` (the SLO report's
  fault section: injected/retried/recovered counts, recovery latencies,
  availability %),
* :mod:`repro.faults.journal` — :class:`ResidencyJournal`, a bounded
  placement/eviction log replayed to pre-warm replacement devices
  (warm restore) instead of starting them cold.
"""

from repro.faults.injector import FaultInjector
from repro.faults.journal import ResidencyJournal
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.faults.recovery import FaultStats, RetryPolicy

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "FaultStats",
    "ResidencyJournal",
]
