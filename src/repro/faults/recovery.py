"""Recovery policy and fault accounting.

:class:`RetryPolicy` bounds how hard the engine fights a transient
fault — capped attempts with exponential backoff *in simulated time*
(backoff seconds are charged to the faulting device, so retries show up
in makespans and tail latencies exactly like real waiting would).

:class:`FaultStats` is the single accounting object threaded through
the injector, the engine and the serving loop; its :meth:`summary`
feeds the SLO report's fault section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError
from repro.reporting import dump_json


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry budget for transient faults.

    Attempt ``k`` (1-based) that fails waits
    ``backoff_base_s * backoff_factor**(k-1)`` simulated seconds before
    the next try; after ``max_attempts`` failed tries the engine gives
    up and raises :class:`~repro.errors.TransientFaultError`.
    """

    max_attempts: int = 4
    backoff_base_s: float = 1e-3
    backoff_factor: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0:
            raise ConfigurationError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff_s(self, attempt: int) -> float:
        """Simulated wait after failed attempt number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        return self.backoff_base_s * self.backoff_factor ** (attempt - 1)


@dataclass
class FaultStats:
    """Counters and timelines accumulated over one chaos run.

    ``recovery_latency_s`` maps fault kind to the simulated seconds each
    recovered fault cost: wasted work + backoff for transients, wasted
    copy + host re-fetch for transfers, and fault-to-new-completion time
    for device losses.  ``events`` is the replayable fault/retry/
    recovery event log rendered into Chrome traces.
    """

    injected: dict[str, int] = field(
        default_factory=lambda: {
            "transient": 0,
            "device_lost": 0,
            "straggler": 0,
            "transfer": 0,
            "node_lost": 0,
            "link_lost": 0,
            "heartbeat_loss": 0,
            "node_flap": 0,
            "data_corruption": 0,
            "tensor_bitflip": 0,
        }
    )
    transient_failures: int = 0
    transient_recovered: int = 0
    transient_abandoned: int = 0
    transfer_refetches: int = 0
    device_losses: int = 0
    #: Correlated failure domains applied (each may kill several devices).
    node_losses: int = 0
    #: Nodes that lost their inter-node links while staying alive.
    link_losses: int = 0
    #: Gray silences applied: nodes that stayed alive but stopped
    #: reporting (``heartbeat_loss``).
    heartbeat_losses: int = 0
    #: Devices brought back after a non-permanent loss (``node_flap``
    #: restore phases).
    device_restores: int = 0
    #: D2D fetches forced through the host because every holder sat
    #: behind a severed inter-node link (``link_lost`` degradation).
    host_staged_fetches: int = 0
    orphaned_tensors: int = 0
    rescheduled_pairs: int = 0
    #: D2D fetches that crossed a node boundary (recovery traffic on the
    #: slow inter-node link; only counted while a topology is configured).
    cross_node_fetches: int = 0
    #: Tensors pre-warmed onto (re)activated devices by journal replay.
    prewarmed_tensors: int = 0
    #: Vectors shed at admission by fault-aware completion-probability
    #: estimates (shed reason ``"predicted-infeasible"``).
    predicted_infeasible: int = 0
    recovery_latency_s: dict[str, list[float]] = field(
        default_factory=lambda: {"transient": [], "device_lost": [], "transfer": []}
    )
    events: list[dict] = field(default_factory=list)
    #: device id -> simulated time of *first* loss.  Kept for backward
    #: compatibility with manually-constructed stats; availability is
    #: charged from ``down_windows`` when any exist for the device.
    lost_at: dict[int, float] = field(default_factory=dict)
    #: ``[device, start_s, end_s]`` down windows; ``end_s is None``
    #: while the device is still down (closed by restore or clipped to
    #: the makespan).  Repeated loss/restore of one device appends one
    #: window per down phase, so availability sums disjoint windows
    #: instead of charging loss-to-makespan once per loss.
    down_windows: list[list] = field(default_factory=list)
    #: (device, start_s, end_s, slow_factor) straggler windows seen.
    straggler_windows: list[tuple[int, float, float, float]] = field(default_factory=list)
    #: Run context bound by :meth:`finalize` so :meth:`summary` needs no
    #: arguments (the common :class:`~repro.reporting.Report` surface).
    makespan_s: float = 0.0
    num_devices: int = 0

    # -------------------------------------------------------------- recording
    def record_event(
        self, kind: str, device: int, time_s: float, duration_s: float, label: str = ""
    ) -> None:
        """Append one fault/retry/recovery event to the replay log."""
        self.events.append(
            {
                "kind": kind,
                "device": device,
                "time_s": float(time_s),
                "duration_s": float(duration_s),
                "label": label,
            }
        )

    def record_recovery(self, fault_kind: str, latency_s: float) -> None:
        self.recovery_latency_s.setdefault(fault_kind, []).append(float(latency_s))

    def open_down_window(self, device: int, time_s: float) -> None:
        """Mark ``device`` down at ``time_s`` (idempotent while open)."""
        for w in self.down_windows:
            if w[0] == device and w[2] is None:
                return
        self.down_windows.append([int(device), float(time_s), None])

    def close_down_window(self, device: int, time_s: float) -> None:
        """Close ``device``'s open down window at ``time_s`` (restore)."""
        for w in self.down_windows:
            if w[0] == device and w[2] is None:
                w[2] = float(time_s)
                return

    def finalize(self, makespan_s: float, num_devices: int) -> "FaultStats":
        """Bind the run context availability accounting needs.

        Called once at the end of a run; afterwards :meth:`summary` and
        :meth:`to_json` work without arguments.  Returns ``self`` for
        chaining.
        """
        self.makespan_s = float(makespan_s)
        self.num_devices = int(num_devices)
        return self

    # ------------------------------------------------------------- aggregates
    def availability(self, makespan_s: float, num_devices: int) -> float:
        """Healthy device-seconds over total device-seconds, in percent.

        Dead time is the union of each device's down windows clipped to
        ``[0, makespan]`` — a window still open at the end of the run
        (permanent loss) extends to the makespan, and repeated
        loss/restore cycles (``node_flap``) sum *disjoint* windows
        instead of charging loss-to-makespan once per loss.  A device in
        ``lost_at`` with no recorded window (manually constructed stats)
        falls back to the legacy charge ``makespan - lost_at[device]``.
        Straggling degrades but does not remove capacity, so it is
        reported separately (:meth:`degraded_device_s`), not charged here.
        """
        if makespan_s <= 0 or num_devices <= 0:
            return 100.0
        per_device: dict[int, list[tuple[float, float]]] = {}
        for dev, start, end in self.down_windows:
            lo = min(max(start, 0.0), makespan_s)
            hi = makespan_s if end is None else min(max(end, 0.0), makespan_s)
            if hi > lo:
                per_device.setdefault(dev, []).append((lo, hi))
        for dev, t in self.lost_at.items():
            if dev not in per_device and not any(w[0] == dev for w in self.down_windows):
                lo = min(max(t, 0.0), makespan_s)
                if makespan_s > lo:
                    per_device.setdefault(dev, []).append((lo, makespan_s))
        dead = 0.0
        for intervals in per_device.values():
            intervals.sort()
            cur_lo, cur_hi = intervals[0]
            for lo, hi in intervals[1:]:
                if lo > cur_hi:
                    dead += cur_hi - cur_lo
                    cur_lo, cur_hi = lo, hi
                else:
                    cur_hi = max(cur_hi, hi)
            dead += cur_hi - cur_lo
        return 100.0 * (1.0 - dead / (makespan_s * num_devices))

    def degraded_device_s(self, makespan_s: float) -> float:
        """Device-seconds spent inside straggler windows (clipped to the run).

        Overlapping windows on the *same* device are merged before
        summing — two windows covering the same second degrade that
        device-second once, not twice (the slowdown compounds, the time
        does not).  Windows on different devices still add up.
        """
        per_device: dict[int, list[tuple[float, float]]] = {}
        for dev, start, end, _ in self.straggler_windows:
            lo, hi = min(start, makespan_s), min(end, makespan_s)
            if hi > lo:
                per_device.setdefault(dev, []).append((lo, hi))
        total = 0.0
        for intervals in per_device.values():
            intervals.sort()
            cur_lo, cur_hi = intervals[0]
            for lo, hi in intervals[1:]:
                if lo > cur_hi:
                    total += cur_hi - cur_lo
                    cur_lo, cur_hi = lo, hi
                else:
                    cur_hi = max(cur_hi, hi)
            total += cur_hi - cur_lo
        return total

    def summary(self, makespan_s: float | None = None, num_devices: int | None = None) -> dict:
        """Deterministic, JSON-ready fault section for the SLO report.

        With no arguments, uses the context bound by :meth:`finalize`
        (the uniform :class:`~repro.reporting.Report` call shape);
        explicit arguments override it.
        """
        makespan_s = self.makespan_s if makespan_s is None else makespan_s
        num_devices = self.num_devices if num_devices is None else num_devices
        latencies = {
            kind: [float(v) for v in vals]
            for kind, vals in sorted(self.recovery_latency_s.items())
        }
        return {
            "injected": {k: self.injected[k] for k in sorted(self.injected)},
            "transient_failures": self.transient_failures,
            "transient_recovered": self.transient_recovered,
            "transient_abandoned": self.transient_abandoned,
            "transfer_refetches": self.transfer_refetches,
            "device_losses": self.device_losses,
            "node_losses": self.node_losses,
            "link_losses": self.link_losses,
            "heartbeat_losses": self.heartbeat_losses,
            "device_restores": self.device_restores,
            "host_staged_fetches": self.host_staged_fetches,
            "orphaned_tensors": self.orphaned_tensors,
            "rescheduled_pairs": self.rescheduled_pairs,
            "cross_node_fetches": self.cross_node_fetches,
            "prewarmed_tensors": self.prewarmed_tensors,
            "predicted_infeasible": self.predicted_infeasible,
            "recovery_latency_s": latencies,
            "availability_pct": self.availability(makespan_s, num_devices),
            "degraded_device_s": self.degraded_device_s(makespan_s),
        }

    def to_json(self, path: str | Path) -> None:
        """Write summary + the replayable fault/retry/recovery event log."""
        dump_json(path, {"summary": self.summary(), "events": list(self.events)})
