"""Residency journaling: bounded placement/eviction log + warm restore.

A :class:`ResidencyJournal` shadows a
:class:`~repro.gpusim.cluster.ClusterState` during a serving run,
recording every residency delta — a tensor becoming resident on a
device (``put``) or leaving it (``drop``) — stamped with the simulated
clock the serving loop advances via :meth:`advance`.  The log is
append-only and bounded (a ring of the most recent ``capacity``
entries), so journaling a long run costs O(capacity) memory, and the
whole journal round-trips through JSON for offline inspection or
cross-run replay.

Its purpose is **warm restore**: when the autoscaler activates a
replacement device after a loss (or a retired device rejoins the pool),
the server replays the journal — :meth:`hot_tensors` ranks uids by how
often and how recently they were resident — and pre-warms the hottest
tensors that currently live nowhere on the pool, instead of letting
every one of them be re-fetched from the host on the critical path of
the next vectors.  TENSILE-style dynamic memory scheduling motivates
exactly this: residency history is a prediction of near-future demand.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

from repro.errors import ConfigurationError
from repro.reporting import dump_json


class ResidencyJournal:
    """Bounded append-only log of cluster residency deltas.

    Parameters
    ----------
    capacity:
        Maximum retained entries; older deltas rotate out (the hot-set
        estimate only needs recent history).
    """

    #: Valid ``note_drop`` reasons: ``"evict"`` (capacity eviction by the
    #: pool's replacement policy), ``"drain"`` (explicit free of finished
    #: data — e.g. completed outputs drained off-device), ``"migrate"``
    #: (the copy moved to another device), ``"lost"`` (the device
    #: holding the copy died or was retired), ``"corrupt"`` (the copy was
    #: invalidated by an integrity check — tainted data, see
    #: :mod:`repro.integrity`).
    DROP_REASONS = ("evict", "drain", "migrate", "lost", "corrupt")

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ConfigurationError(f"journal capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        #: (op, time_s, uid, device, nbytes, reason) ring, oldest first
        #: (``reason`` is ``""`` for puts).
        self._entries: deque[tuple[str, float, int, int, int, str]] = deque(maxlen=capacity)
        #: Simulated clock used to stamp entries (see :meth:`advance`).
        self.now = 0.0
        #: Deltas ever recorded, including rotated-out ones.
        self.total_recorded = 0
        # Warm-restore accounting (filled by the serving loop).
        self.restores = 0
        self.prewarmed_tensors = 0
        self.prewarm_cost_s = 0.0

    # ---------------------------------------------------------------- writing
    def advance(self, now: float) -> None:
        """Move the journal clock forward (never backwards)."""
        self.now = max(self.now, now)

    def note_put(self, uid: int, device: int, nbytes: int) -> None:
        """A tensor became resident on ``device``."""
        self._entries.append(("put", self.now, int(uid), int(device), int(nbytes), ""))
        self.total_recorded += 1

    def note_drop(self, uid: int, device: int, reason: str = "evict") -> None:
        """A tensor left ``device``; ``reason`` says why (see DROP_REASONS).

        The reason matters to :meth:`hot_tensors`: a ``"drain"`` drop
        with no later put means the tensor was explicitly freed as
        no-longer-needed (a completed output drained off-device) —
        ranking it as a prewarm candidate would re-load data nothing
        will ask for.  ``"evict"`` (capacity pressure, not a demand
        signal), ``"migrate"`` (the copy moved, the tensor is still
        wanted) and ``"lost"`` (the device died under it) leave the
        tensor ranked for warm restore.
        """
        if reason not in self.DROP_REASONS:
            raise ConfigurationError(
                f"unknown drop reason {reason!r}; expected one of {self.DROP_REASONS}"
            )
        self._entries.append(("drop", self.now, int(uid), int(device), 0, reason))
        self.total_recorded += 1

    def note_restore(self, device: int, tensors: int, cost_s: float) -> None:
        """Record one warm restore applied to an activated device."""
        self.restores += 1
        self.prewarmed_tensors += int(tensors)
        self.prewarm_cost_s += float(cost_s)

    # ---------------------------------------------------------------- reading
    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[dict]:
        """The retained deltas as JSON-ready dicts, oldest first.

        Drop entries carry a ``reason`` key; puts do not.
        """
        out = []
        for op, t, uid, dev, nbytes, reason in self._entries:
            e = {"op": op, "time_s": t, "uid": uid, "device": dev, "nbytes": nbytes}
            if op == "drop":
                e["reason"] = reason
            out.append(e)
        return out

    def hot_tensors(self) -> list[tuple[int, int]]:
        """Rank journaled tensors hot-first: ``[(uid, nbytes), ...]``.

        Hotness orders by placement count (how many times the tensor
        became resident inside the retained window — a proxy for reuse
        frequency), then by recency of the last placement.  ``nbytes``
        is taken from the most recent ``put`` so a warm restore knows
        each candidate's footprint without a tensor catalogue.

        Tensors whose *latest* event is a ``"drain"`` drop and that were
        never re-put are excluded: a drain is an explicit this-data-is-
        finished free (completed outputs drained off-device), so
        pre-warming them onto a fresh device would waste its memory
        budget on data nothing will request.  ``"evict"`` drops do NOT
        exclude — capacity eviction says the pool was full, not that
        the tensor is cold (evicted repeated tensors are re-fetched on
        their next use and are exactly what prewarming saves) — and
        ``"migrate"``/``"lost"`` drops keep the tensor ranked too: the
        data is still wanted, it just changed (or lost) its home.
        """
        count: dict[int, int] = {}
        last_put: dict[int, float] = {}
        nbytes_of: dict[int, int] = {}
        #: uids whose most recent journal event is a drain drop.
        gone: set[int] = set()
        for op, t, uid, _dev, nbytes, reason in self._entries:
            if op == "put":
                count[uid] = count.get(uid, 0) + 1
                last_put[uid] = t
                nbytes_of[uid] = nbytes
                gone.discard(uid)
            elif reason == "drain":
                gone.add(uid)
            else:  # "evict"/"migrate"/"lost"/"corrupt": not a cold signal, keep ranked
                gone.discard(uid)
        ranked = sorted(
            (uid for uid in count if uid not in gone),
            key=lambda uid: (-count[uid], -last_put[uid], uid),
        )
        return [(uid, nbytes_of[uid]) for uid in ranked]

    def summary(self) -> dict:
        """JSON-ready journal section for the serving report."""
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "total_recorded": self.total_recorded,
            "restores": self.restores,
            "prewarmed_tensors": self.prewarmed_tensors,
            "prewarm_cost_s": self.prewarm_cost_s,
        }

    # ------------------------------------------------------------ persistence
    def to_json(self, path: str | Path) -> None:
        """Persist the retained window (plus counters) as JSON."""
        dump_json(path, {"version": 1, **self.summary(), "log": self.entries()})

    @classmethod
    def from_json(cls, path: str | Path) -> "ResidencyJournal":
        """Rebuild a journal from :meth:`to_json` output."""
        payload = json.loads(Path(path).read_text())
        if not isinstance(payload, dict) or "log" not in payload:
            raise ConfigurationError(
                f"residency journal {path} must be an object with a 'log' list"
            )
        journal = cls(capacity=payload.get("capacity", 4096))
        for i, e in enumerate(payload["log"]):
            try:
                journal.advance(float(e["time_s"]))
                if e["op"] == "put":
                    journal.note_put(e["uid"], e["device"], e["nbytes"])
                elif e["op"] == "drop":
                    journal.note_drop(e["uid"], e["device"], e.get("reason", "evict"))
                else:
                    raise ConfigurationError(
                        f"journal entry {i} has unknown op {e['op']!r}"
                    )
            except (KeyError, TypeError) as exc:
                raise ConfigurationError(f"journal entry {i} is malformed: {exc}") from None
        journal.restores = int(payload.get("restores", 0))
        journal.prewarmed_tensors = int(payload.get("prewarmed_tensors", 0))
        journal.prewarm_cost_s = float(payload.get("prewarm_cost_s", 0.0))
        journal.total_recorded = max(
            journal.total_recorded, int(payload.get("total_recorded", 0))
        )
        return journal
