"""Scheduler interface.

Scheduling is *online* and interleaved with execution, matching the
paper's dynamic setting: for each incoming pair the scheduler reads the
live cluster state (residency, per-vector slot counters, accumulated
compute) and returns a device id; the execution engine then applies the
pair, so the next decision sees the true post-state.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.gpusim.cluster import ClusterState
from repro.tensor.spec import TensorPair, VectorSpec


class Scheduler(ABC):
    """Base class for pair→GPU schedulers."""

    #: Human-readable name used in experiment tables.
    name: str = "scheduler"

    def begin_vector(self, vector: VectorSpec, cluster: ClusterState) -> None:
        """Hook called once before a vector's pairs are scheduled.

        The default is a no-op; stateful schedulers (e.g. round-robin
        cursors, MICCO's per-vector reuse bounds) override it.
        """

    @abstractmethod
    def choose(self, pair: TensorPair, cluster: ClusterState) -> int:
        """Return the device id to run ``pair`` on."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
