"""Local reuse patterns (paper §III-B1, Fig. 4).

An incoming tensor pair is classified against current GPU residency
into one of four patterns.  The pattern selects which reuse-bound tier
governs the availability test and which mappings (pair→GPU placements)
are considered.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.gpusim.cluster import ClusterState
from repro.tensor.spec import TensorPair


class ReusePattern(enum.Enum):
    """The four local reuse patterns of Fig. 4."""

    TWO_REPEATED_SAME = "twoRepeatedSame"
    TWO_REPEATED_DIFF = "twoRepeatedDiff"
    ONE_REPEATED = "oneRepeated"
    TWO_NEW = "twoNew"

    @property
    def tier(self) -> int:
        """Reuse-bound tier governing this pattern (Table II)."""
        if self is ReusePattern.TWO_REPEATED_SAME:
            return 0
        if self is ReusePattern.TWO_NEW:
            return 2
        return 1


@dataclass(frozen=True)
class PairClassification:
    """Classification result: pattern plus the holder sets it came from."""

    pattern: ReusePattern
    left_holders: frozenset[int]
    right_holders: frozenset[int]

    @property
    def common_holders(self) -> frozenset[int]:
        """Devices holding *both* tensors (mapping 1 candidates)."""
        return self.left_holders & self.right_holders

    @property
    def any_holders(self) -> frozenset[int]:
        """Devices holding at least one tensor (mapping 2–3 candidates)."""
        return self.left_holders | self.right_holders


def classify_pair(pair: TensorPair, cluster: ClusterState) -> PairClassification:
    """Classify ``pair`` against the cluster's current residency.

    ``twoRepeatedSame`` requires a single device holding both tensors;
    a pair whose tensors are resident only on *different* devices is
    ``twoRepeatedDiff``.  A pair referencing the same tensor twice is
    ``twoRepeatedSame`` wherever that tensor is resident.
    """
    left = cluster.devices_holding(pair.left.uid)
    right = cluster.devices_holding(pair.right.uid)
    if left & right:
        pattern = ReusePattern.TWO_REPEATED_SAME
    elif left and right:
        pattern = ReusePattern.TWO_REPEATED_DIFF
    elif left or right:
        pattern = ReusePattern.ONE_REPEATED
    else:
        pattern = ReusePattern.TWO_NEW
    return PairClassification(pattern=pattern, left_holders=left, right_holders=right)
