"""Locality-only baseline (CODA-style co-location, no balance).

Always places a pair on the device already holding (most of) its data,
regardless of load — the paper's Fig. 2 case ① taken to its logical
conclusion, and a stand-in for data-placement-first schedulers like
CODA [Kim et al. 2018] that "pay more attention to data locations".
Useful as the opposite ablation pole to Groute: Groute is all balance
and no locality; this is all locality and no balance.
"""

from __future__ import annotations

from repro.gpusim.cluster import ClusterState
from repro.schedulers.base import Scheduler
from repro.schedulers.reuse_patterns import classify_pair
from repro.tensor.spec import TensorPair


class LocalityScheduler(Scheduler):
    """Follow the data; break ties toward the least-loaded holder."""

    name = "locality"

    def choose(self, pair: TensorPair, cluster: ClusterState) -> int:
        cls = classify_pair(pair, cluster)
        candidates = cls.common_holders or cls.any_holders
        if candidates:
            compute = cluster.compute_s
            return min(sorted(candidates), key=lambda g: (compute[g], g))
        # Nothing resident anywhere: place by most free memory so the
        # new tensors seed the roomiest device.
        return max(range(cluster.num_devices), key=lambda g: (cluster.free_bytes(g), -g))


class RandomScheduler(Scheduler):
    """Seeded uniform-random placement — the statistical floor."""

    name = "random"

    def __init__(self, seed=0):
        from repro.utils.rng import as_generator

        self._rng = as_generator(seed)

    def choose(self, pair: TensorPair, cluster: ClusterState) -> int:
        return int(self._rng.integers(0, cluster.num_devices))
