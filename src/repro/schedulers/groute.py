"""Groute-style baseline: earliest-available-device load balancing.

Models the scheduling discipline of Groute [Ben-Nun et al. 2017] and
similar multi-GPU frameworks as characterized by the paper: "assigns
jobs and associated data on the earliest available device to achieve
good load balance" — i.e. each incoming pair goes to the device that
will be free soonest (least accumulated busy time), with no awareness
of where the pair's tensors are resident.
"""

from __future__ import annotations

import numpy as np

from repro import compat
from repro.gpusim.cluster import ClusterState
from repro.gpusim.costmodel import lex_argmin
from repro.schedulers.base import Scheduler
from repro.tensor.spec import TensorPair


class GrouteScheduler(Scheduler):
    """Earliest-available-device assignment (reuse-blind)."""

    name = "groute"

    def choose(self, pair: TensorPair, cluster: ClusterState) -> int:
        busy = cluster.busy_s
        # Lowest busy time among surviving devices; deterministic
        # lowest-id tie break.
        alive = cluster.alive_ids()
        if compat.REFERENCE_CORE:
            best = alive[0]
            best_t = busy[best]
            for g in alive[1:]:
                if busy[g] < best_t:
                    best, best_t = g, busy[g]
            return best
        # Vectorised: one masked argmin over the busy horizon; alive is
        # ascending, so the first minimum is the lowest id.
        return alive[lex_argmin(busy[alive])]
