"""Round-robin baseline: rotate devices regardless of cost or residency."""

from __future__ import annotations

from repro.gpusim.cluster import ClusterState
from repro.schedulers.base import Scheduler
from repro.tensor.spec import TensorPair, VectorSpec


class RoundRobinScheduler(Scheduler):
    """Cyclic assignment; the weakest sensible baseline."""

    name = "round-robin"

    def __init__(self):
        self._cursor = 0

    def begin_vector(self, vector: VectorSpec, cluster: ClusterState) -> None:
        # Keep the cursor rolling across vectors; nothing to reset.
        pass

    def choose(self, pair: TensorPair, cluster: ClusterState) -> int:
        # Rotate over the surviving pool so lost devices drop out of
        # the cycle (with every device healthy this is 0..n-1 as before).
        alive = cluster.alive_ids()
        g = alive[self._cursor % len(alive)]
        self._cursor += 1
        return g
