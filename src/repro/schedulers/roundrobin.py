"""Round-robin baseline: rotate devices regardless of cost or residency."""

from __future__ import annotations

from repro.gpusim.cluster import ClusterState
from repro.schedulers.base import Scheduler
from repro.tensor.spec import TensorPair, VectorSpec


class RoundRobinScheduler(Scheduler):
    """Cyclic assignment; the weakest sensible baseline."""

    name = "round-robin"

    def __init__(self):
        self._cursor = 0

    def begin_vector(self, vector: VectorSpec, cluster: ClusterState) -> None:
        # Keep the cursor rolling across vectors; nothing to reset.
        pass

    def choose(self, pair: TensorPair, cluster: ClusterState) -> int:
        g = self._cursor % cluster.num_devices
        self._cursor += 1
        return g
