"""MICCO's heuristic scheduling algorithm (paper Alg. 1 + Alg. 2).

Step I–II (Alg. 1) build the candidate queue: first devices that hold
*both* tensors (data-centric, tier-0 bound), then devices holding one
tensor (tier-1), then any device (tier-2).  A device enters the queue
only if it passes the availability test
``assigned_slots[g] < reuseBd[tier] + balanceNum``.

Step III (Alg. 2) picks from the queue: normally the least-loaded
candidate (computation-centric policy); when assigning the pair would
oversubscribe some candidate, the candidate with the most free memory
(memory-eviction-sensitive policy).  Ties break on the secondary
criterion and then on the lowest device id — deterministic where the
paper uses ``random()``, so experiment runs are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchedulingError
from repro.gpusim.cluster import ClusterState
from repro.schedulers.base import Scheduler
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.reuse_patterns import ReusePattern, classify_pair
from repro.tensor.spec import TensorPair, VectorSpec


def incoming_bytes(pair: TensorPair, device_id: int, cluster: ClusterState) -> int:
    """New device bytes needed to run ``pair`` on ``device_id``.

    Counts each non-resident distinct input once plus the output.
    """
    total = pair.out.nbytes
    seen: set[int] = set()
    for spec in pair.inputs:
        if spec.uid in seen:
            continue
        seen.add(spec.uid)
        if not cluster.is_resident(spec.uid, device_id):
            total += spec.nbytes
    return total


def would_evict(pair: TensorPair, device_id: int, cluster: ClusterState) -> bool:
    """True if placing ``pair`` on ``device_id`` would trigger evictions."""
    return incoming_bytes(pair, device_id, cluster) > cluster.free_bytes(device_id)


class MiccoScheduler(Scheduler):
    """The MICCO heuristic.

    Parameters
    ----------
    bounds:
        Initial reuse bounds.  ``ReuseBounds.zeros()`` gives the paper's
        *MICCO-naive*; per-vector bounds from the regression model give
        *MICCO-optimal* (set via :meth:`set_bounds`, typically by the
        driving session before each vector).
    pattern_aware:
        Ablation switch: when False, steps I–II are skipped and every
        pair is treated as ``twoNew`` (pure balance-constrained
        placement) — isolates the contribution of the data-centric
        policy.
    eviction_sensitive:
        Ablation switch: when False, Alg. 2 always uses the
        computation-centric selection, even when a candidate would
        evict — isolates the memory-eviction-sensitive policy.
    """

    name = "micco"

    def __init__(
        self,
        bounds: ReuseBounds | None = None,
        *,
        pattern_aware: bool = True,
        eviction_sensitive: bool = True,
    ):
        self.bounds = bounds if bounds is not None else ReuseBounds.zeros()
        self.pattern_aware = pattern_aware
        self.eviction_sensitive = eviction_sensitive
        #: Pattern histogram, for introspection/experiments.
        self.pattern_counts: dict[ReusePattern, int] = {p: 0 for p in ReusePattern}

    def set_bounds(self, bounds: ReuseBounds) -> None:
        """Install the reuse bounds for subsequent decisions."""
        self.bounds = bounds

    def begin_vector(self, vector: VectorSpec, cluster: ClusterState) -> None:
        # Per-vector balance counters are reset by the engine via
        # ``cluster.begin_vector``; nothing else to do here.
        pass

    # -------------------------------------------------------------- Alg. 1
    def _available(self, device_id: int, tier: int, cluster: ClusterState) -> bool:
        """The paper's availability test for reuse-bound ``tier``."""
        return cluster.assigned_slots[device_id] < self.bounds[tier] + cluster.balance_num

    def build_candidates(self, pair: TensorPair, cluster: ClusterState) -> list[int]:
        """Alg. 1 steps I–II: the candidate queue for ``pair``.

        Returned device ids are unique and in ascending order (the order
        itself never matters — Alg. 2 selects by cost, ties by id).
        """
        cls = classify_pair(pair, cluster)
        self.pattern_counts[cls.pattern] += 1

        if self.pattern_aware:
            # Step I: devices holding both tensors, under the tier-0 bound.
            candi = [g for g in sorted(cls.common_holders) if self._available(g, 0, cluster)]
            if candi:
                return candi

            # Step II: devices holding one tensor, under the tier-1 bound.
            candi = [g for g in sorted(cls.any_holders) if self._available(g, 1, cluster)]
            if candi:
                return candi

        # Fallback: any *surviving* device under the tier-2 bound.
        # (Steps I–II are alive-safe for free: lost devices hold no
        # tensors, so they never appear among the holders.)
        candi = [g for g in cluster.alive_ids() if self._available(g, 2, cluster)]
        if candi:
            return candi

        # Defensive: with bounds >= 0 some device is always below the
        # balanced share mid-vector, but guard against degenerate
        # configurations (e.g. externally mutated counters).
        return cluster.alive_ids()

    # -------------------------------------------------------------- Alg. 2
    def select(self, candidates: list[int], pair: TensorPair, cluster: ClusterState) -> int:
        """Alg. 2: computation-centric vs memory-eviction-sensitive pick."""
        if not candidates:
            raise SchedulingError("empty candidate queue")
        evict_flag = self.eviction_sensitive and any(
            would_evict(pair, g, cluster) for g in candidates
        )
        compute = cluster.compute_s
        if not evict_flag:
            # Least computation; ties -> most free memory; ties -> lowest id.
            key = lambda g: (compute[g], -cluster.free_bytes(g), g)
        else:
            # Most free memory; ties -> least computation; ties -> lowest id.
            key = lambda g: (-cluster.free_bytes(g), compute[g], g)
        return min(candidates, key=key)

    def choose(self, pair: TensorPair, cluster: ClusterState) -> int:
        return self.select(self.build_candidates(pair, cluster), pair, cluster)

    def reset_stats(self) -> None:
        self.pattern_counts = {p: 0 for p in ReusePattern}
