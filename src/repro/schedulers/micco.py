"""MICCO's heuristic scheduling algorithm (paper Alg. 1 + Alg. 2).

Step I–II (Alg. 1) build the candidate queue: first devices that hold
*both* tensors (data-centric, tier-0 bound), then devices holding one
tensor (tier-1), then any device (tier-2).  A device enters the queue
only if it passes the availability test
``assigned_slots[g] < reuseBd[tier] + balanceNum``.

Step III (Alg. 2) picks from the queue: normally the least-loaded
candidate (computation-centric policy); when assigning the pair would
oversubscribe some candidate, the candidate with the most free memory
(memory-eviction-sensitive policy).  Ties break on the secondary
criterion and then on the lowest device id — deterministic where the
paper uses ``random()``, so experiment runs are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro import compat
from repro.errors import SchedulingError
from repro.gpusim.cluster import ClusterState
from repro.gpusim.costmodel import CostModel
from repro.schedulers.base import Scheduler
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.reuse_patterns import ReusePattern, classify_pair
from repro.tensor.spec import TensorPair, VectorSpec

#: Shared default scoring model — Alg. 2 scoring only reads cluster
#: state, so a parameterless model serves every scheduler instance.
_DEFAULT_COST_MODEL = CostModel()

#: Candidate-set width at which the numpy batch scorer overtakes the
#: fused scalar pass.  Below this, per-array-op overhead (~1 µs each)
#: costs more than it saves; candidate queues on small clusters are
#: typically 1–8 wide.
VECTOR_MIN_CANDIDATES = 12

#: Shared empty holder set for the classification fast path.
_EMPTY_SET: frozenset[int] = frozenset()


def incoming_bytes(pair: TensorPair, device_id: int, cluster: ClusterState) -> int:
    """New device bytes needed to run ``pair`` on ``device_id``.

    Counts each non-resident distinct input once plus the output.
    """
    total = pair.out.nbytes
    seen: set[int] = set()
    for spec in pair.inputs:
        if spec.uid in seen:
            continue
        seen.add(spec.uid)
        if not cluster.is_resident(spec.uid, device_id):
            total += spec.nbytes
    return total


def incoming_bytes_batch(pair: TensorPair, device_ids, cluster: ClusterState) -> np.ndarray:
    """:func:`incoming_bytes` for every device in ``device_ids`` at once.

    One holder-set lookup per distinct input instead of one residency
    probe per (input, device) combination.
    """
    total = np.full(len(device_ids), pair.out.nbytes, dtype=np.int64)
    left, right = pair.left, pair.right
    inputs = (left,) if right.uid == left.uid else (left, right)
    for spec in inputs:
        holders = cluster.devices_holding(spec.uid)
        nb = spec.nbytes
        if not holders:
            total += nb
        else:
            total += np.fromiter(
                (0 if g in holders else nb for g in device_ids),
                dtype=np.int64,
                count=len(device_ids),
            )
    return total


def would_evict(pair: TensorPair, device_id: int, cluster: ClusterState) -> bool:
    """True if placing ``pair`` on ``device_id`` would trigger evictions."""
    return incoming_bytes(pair, device_id, cluster) > cluster.free_bytes(device_id)


class MiccoScheduler(Scheduler):
    """The MICCO heuristic.

    Parameters
    ----------
    bounds:
        Initial reuse bounds.  ``ReuseBounds.zeros()`` gives the paper's
        *MICCO-naive*; per-vector bounds from the regression model give
        *MICCO-optimal* (set via :meth:`set_bounds`, typically by the
        driving session before each vector).
    pattern_aware:
        Ablation switch: when False, steps I–II are skipped and every
        pair is treated as ``twoNew`` (pure balance-constrained
        placement) — isolates the contribution of the data-centric
        policy.
    eviction_sensitive:
        Ablation switch: when False, Alg. 2 always uses the
        computation-centric selection, even when a candidate would
        evict — isolates the memory-eviction-sensitive policy.
    """

    name = "micco"

    def __init__(
        self,
        bounds: ReuseBounds | None = None,
        *,
        pattern_aware: bool = True,
        eviction_sensitive: bool = True,
        cost_model: CostModel | None = None,
    ):
        self.bounds = bounds if bounds is not None else ReuseBounds.zeros()
        self.pattern_aware = pattern_aware
        self.eviction_sensitive = eviction_sensitive
        #: Scoring model for the vectorised Alg. 2 selection.
        self.cost_model = cost_model or _DEFAULT_COST_MODEL
        #: Pattern histogram, for introspection/experiments.
        self.pattern_counts: dict[ReusePattern, int] = {p: 0 for p in ReusePattern}

    def set_bounds(self, bounds: ReuseBounds) -> None:
        """Install the reuse bounds for subsequent decisions."""
        self.bounds = bounds

    def begin_vector(self, vector: VectorSpec, cluster: ClusterState) -> None:
        # Per-vector balance counters are reset by the engine via
        # ``cluster.begin_vector``; nothing else to do here.
        pass

    # -------------------------------------------------------------- Alg. 1
    def _available(self, device_id: int, tier: int, cluster: ClusterState) -> bool:
        """The paper's availability test for reuse-bound ``tier``."""
        return cluster.assigned_slots[device_id] < self.bounds[tier] + cluster.balance_num

    def build_candidates(self, pair: TensorPair, cluster: ClusterState) -> list[int]:
        """Alg. 1 steps I–II: the candidate queue for ``pair``.

        Returned device ids are unique and in ascending order (the order
        itself never matters — Alg. 2 selects by cost, ties by id).
        """
        if compat.REFERENCE_CORE:
            cls = classify_pair(pair, cluster)
            self.pattern_counts[cls.pattern] += 1
            return self._build_candidates_ref(cls, cluster)

        # Fast path: classify against the live holder index (no
        # frozenset copies) and hoist the availability threshold out of
        # the scans (``bounds[tier] + balance_num`` is per-tier constant
        # within a pair) — same tests, evaluated once each.
        holders_map = cluster._holders
        lu = pair.left.uid
        ru = pair.right.uid
        left = holders_map.get(lu) or _EMPTY_SET
        right = left if ru == lu else (holders_map.get(ru) or _EMPTY_SET)
        common = left & right
        if common:
            pattern = ReusePattern.TWO_REPEATED_SAME
        elif left and right:
            pattern = ReusePattern.TWO_REPEATED_DIFF
        elif left or right:
            pattern = ReusePattern.ONE_REPEATED
        else:
            pattern = ReusePattern.TWO_NEW
        self.pattern_counts[pattern] += 1

        slots = cluster.assigned_slots.tolist()
        balance = cluster.balance_num
        bounds = self.bounds
        if self.pattern_aware:
            # Step I: devices holding both tensors, under the tier-0 bound.
            if common:
                thr = bounds[0] + balance
                candi = [g for g in sorted(common) if slots[g] < thr]
                if candi:
                    return candi

            # Step II: devices holding one tensor, under the tier-1 bound.
            any_h = left | right
            if any_h:
                thr = bounds[1] + balance
                candi = [g for g in sorted(any_h) if slots[g] < thr]
                if candi:
                    return candi

        # Fallback: any *surviving* device under the tier-2 bound.
        # (Steps I–II are alive-safe for free: lost devices hold no
        # tensors, so they never appear among the holders.)
        thr = bounds[2] + balance
        candi = [g for g in cluster.alive_ids() if slots[g] < thr]
        if candi:
            return candi

        # Defensive: with bounds >= 0 some device is always below the
        # balanced share mid-vector, but guard against degenerate
        # configurations (e.g. externally mutated counters).
        return cluster.alive_ids()

    def _build_candidates_ref(self, cls, cluster: ClusterState) -> list[int]:
        """Original per-candidate Alg. 1 scan (golden-reference path)."""
        if self.pattern_aware:
            candi = [g for g in sorted(cls.common_holders) if self._available(g, 0, cluster)]
            if candi:
                return candi
            candi = [g for g in sorted(cls.any_holders) if self._available(g, 1, cluster)]
            if candi:
                return candi
        candi = [g for g in cluster.alive_ids() if self._available(g, 2, cluster)]
        if candi:
            return candi
        return cluster.alive_ids()

    # -------------------------------------------------------------- Alg. 2
    def select(self, candidates: list[int], pair: TensorPair, cluster: ClusterState) -> int:
        """Alg. 2: computation-centric vs memory-eviction-sensitive pick."""
        if not candidates:
            raise SchedulingError("empty candidate queue")
        if compat.REFERENCE_CORE:
            return self._select_ref(candidates, pair, cluster)
        n = len(candidates)
        if n == 1:
            return candidates[0]
        if n < VECTOR_MIN_CANDIDATES:
            return self._select_small(candidates, pair, cluster)
        cand = np.asarray(candidates, dtype=np.int64)
        return self.cost_model.score_batch(
            cand,
            incoming_bytes_batch(pair, candidates, cluster),
            cluster.free_bytes_batch(candidates),
            cluster.compute_s[cand],
            eviction_sensitive=self.eviction_sensitive,
        )

    def _select_small(self, candidates: list[int], pair: TensorPair, cluster: ClusterState) -> int:
        """Alg. 2 for narrow candidate sets: one fused scalar pass.

        Bit-identical to :meth:`~repro.gpusim.costmodel.CostModel.score_batch`
        on the same inputs — per-pair invariants (output bytes, holder
        sets) are hoisted so each candidate costs two set probes and a
        couple of comparisons, which beats array-op overhead below
        :data:`VECTOR_MIN_CANDIDATES` devices.
        """
        pools = cluster.pools
        compute = cluster.compute_s
        holders_map = cluster._holders
        left, right = pair.left, pair.right
        out_b = pair.out.nbytes
        lh = holders_map.get(left.uid) or _EMPTY_SET
        l_nb = left.nbytes
        two = right.uid != left.uid
        if two:
            rh = holders_map.get(right.uid) or _EMPTY_SET
            r_nb = right.nbytes
        free = [pools[g].free_bytes for g in candidates]
        if self.eviction_sensitive:
            evict = False
            for i, g in enumerate(candidates):
                inc = out_b
                if g not in lh:
                    inc += l_nb
                if two and g not in rh:
                    inc += r_nb
                if inc > free[i]:
                    evict = True
                    break
        else:
            evict = False
        best = None
        best_key = None
        for i, g in enumerate(candidates):
            key = (-free[i], compute[g], g) if evict else (compute[g], -free[i], g)
            if best_key is None or key < best_key:
                best, best_key = g, key
        return best

    def _select_ref(self, candidates: list[int], pair: TensorPair, cluster: ClusterState) -> int:
        """Original per-candidate Alg. 2 pick (golden-reference path)."""
        evict_flag = self.eviction_sensitive and any(
            would_evict(pair, g, cluster) for g in candidates
        )
        compute = cluster.compute_s
        if not evict_flag:
            # Least computation; ties -> most free memory; ties -> lowest id.
            key = lambda g: (compute[g], -cluster.free_bytes(g), g)
        else:
            # Most free memory; ties -> least computation; ties -> lowest id.
            key = lambda g: (-cluster.free_bytes(g), compute[g], g)
        return min(candidates, key=key)

    def choose(self, pair: TensorPair, cluster: ClusterState) -> int:
        """Alg. 1 + Alg. 2 fused: one pass from holder sets to device.

        Equivalent to ``select(build_candidates(pair, cluster), ...)``
        (the golden suite pins that equivalence), but the holder sets
        are read once and the candidate tier is remembered: tier-0
        candidates hold *both* inputs, so their incoming bytes are the
        output alone and the per-candidate residency probes of
        :meth:`_select_small` collapse to a constant.
        """
        if compat.REFERENCE_CORE:
            return self.select(self.build_candidates(pair, cluster), pair, cluster)

        holders_map = cluster._holders
        # A ShardView carries ``_device_set``; its ``devices_holding``
        # scopes holders to the shard, and reading the raw holder map
        # must apply the same scoping or candidates leak off-shard.
        dset = getattr(cluster, "_device_set", None)
        left_spec, right_spec = pair.left, pair.right
        lu = left_spec.uid
        ru = right_spec.uid
        left = holders_map.get(lu) or _EMPTY_SET
        if dset is not None and left:
            left = left & dset
        if ru == lu:
            right = left
        else:
            right = holders_map.get(ru) or _EMPTY_SET
            if dset is not None and right:
                right = right & dset
        if left and right:
            common = left & right
            pattern = (
                ReusePattern.TWO_REPEATED_SAME if common else ReusePattern.TWO_REPEATED_DIFF
            )
        else:
            common = _EMPTY_SET
            pattern = ReusePattern.ONE_REPEATED if (left or right) else ReusePattern.TWO_NEW
        self.pattern_counts[pattern] += 1

        slots = cluster.assigned_slots.tolist()
        balance = cluster.balance_num
        bounds = self.bounds
        candidates = None
        tier = 2
        if self.pattern_aware:
            if common:
                thr = bounds[0] + balance
                candi = [g for g in sorted(common) if slots[g] < thr]
                if candi:
                    candidates, tier = candi, 0
            if candidates is None and (left or right):
                any_h = left | right
                thr = bounds[1] + balance
                candi = [g for g in sorted(any_h) if slots[g] < thr]
                if candi:
                    candidates, tier = candi, 1
        if candidates is None:
            thr = bounds[2] + balance
            candi = [g for g in cluster.alive_ids() if slots[g] < thr]
            candidates = candi if candi else cluster.alive_ids()

        n = len(candidates)
        if n == 1:
            return candidates[0]
        if n >= VECTOR_MIN_CANDIDATES:
            cand = np.asarray(candidates, dtype=np.int64)
            return self.cost_model.score_batch(
                cand,
                incoming_bytes_batch(pair, candidates, cluster),
                cluster.free_bytes_batch(candidates),
                cluster.compute_s[cand],
                eviction_sensitive=self.eviction_sensitive,
            )

        pools = cluster.pools
        compute = cluster.compute_s
        free = [pools[g].free_bytes for g in candidates]
        evict = False
        if self.eviction_sensitive:
            out_b = pair.out.nbytes
            if tier == 0:
                # Both inputs resident on every candidate.
                for i in range(n):
                    if out_b > free[i]:
                        evict = True
                        break
            else:
                two = ru != lu
                l_nb = left_spec.nbytes
                r_nb = right_spec.nbytes
                for i, g in enumerate(candidates):
                    inc = out_b
                    if g not in left:
                        inc += l_nb
                    if two and g not in right:
                        inc += r_nb
                    if inc > free[i]:
                        evict = True
                        break
        best = None
        best_key = None
        for i, g in enumerate(candidates):
            key = (-free[i], compute[g], g) if evict else (compute[g], -free[i], g)
            if best_key is None or key < best_key:
                best, best_key = g, key
        return best

    def reset_stats(self) -> None:
        self.pattern_counts = {p: 0 for p in ReusePattern}
