"""Cross-vector batching: merge compatible vectors into one scheduling round.

MICCO's reuse-vs-balance tradeoff is normally evaluated one vector at a
time, but under serving load the admission queue routinely holds several
vectors whose tensor sets overlap — scheduling them independently
forfeits exactly the cross-pair reuse the paper's patterns (Fig. 4,
Table II) are built to capture.  This module provides the merged-vector
entry point the serving loop batches through:

* :func:`merge_vectors` concatenates the member vectors' pairs into one
  *super-vector*.  Scheduling it through the unchanged per-pair MICCO
  path preserves the ReuseBounds semantics over the **combined** tensor
  count: ``ClusterState.begin_vector`` receives the merged
  ``num_tensors``, so ``balanceNum = Σ numTensor / numAliveGPU`` and the
  availability test ``assigned[g] < reuseBd[k] + balanceNum`` bound each
  GPU's share of the whole round, not of any single member.
* :func:`split_assignment` de-multiplexes the merged pair→device
  assignment back into per-member slices (index-aligned with each
  member's own ``pairs``), so per-vector completion, latency and fault
  recovery accounting stay exact.
* :func:`batch_shape_key` / :func:`batch_footprint_bytes` are the
  compatibility predicates: only vectors of the same workload shape
  family merge, within a combined device-memory footprint budget.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.tensor.spec import VectorSpec


def batch_shape_key(vector: VectorSpec) -> tuple[int, int, int, int]:
    """Workload shape family of a vector: ``(size, batch, rank, dtype)``.

    Two vectors may share a scheduling round only when their tensors
    agree on all four — mixing tensor sizes would skew ``balanceNum``
    (slots of very different cost would count equally) and mixing
    dtypes/batches would skew the footprint arithmetic.
    """
    t = vector.pairs[0].left
    return (t.size, t.batch, t.rank, t.dtype_bytes)


def batch_footprint_bytes(vectors) -> int:
    """Combined device footprint of a candidate batch, in bytes.

    Distinct input tensors count once across *all* members (that
    dedup is the whole point of batching: a tensor shared by two member
    vectors is placed once and reused) plus every contraction output.
    """
    seen: dict[int, int] = {}
    out_bytes = 0
    for v in vectors:
        for p in v.pairs:
            seen[p.left.uid] = p.left.nbytes
            seen[p.right.uid] = p.right.nbytes
            out_bytes += p.out.nbytes
    return sum(seen.values()) + out_bytes


def merge_vectors(vectors) -> VectorSpec:
    """Merge compatible vectors into one super-vector for a round.

    The members' pairs are concatenated in member order, so index
    ``i`` of the merged assignment maps back to a member pair through
    :func:`split_assignment`.  The merged vector carries the member ids
    in ``meta["batch_members"]`` for bookkeeping; a single-member
    "merge" returns the member itself untouched.
    """
    vectors = list(vectors)
    if not vectors:
        raise ConfigurationError("merge_vectors needs at least one vector")
    if len(vectors) == 1:
        return vectors[0]
    key0 = batch_shape_key(vectors[0])
    for v in vectors[1:]:
        if batch_shape_key(v) != key0:
            raise ConfigurationError(
                f"cannot merge vectors of different shape families: "
                f"{key0} vs {batch_shape_key(v)} (vector {v.vector_id})"
            )
    return VectorSpec(
        pairs=[p for v in vectors for p in v.pairs],
        vector_id=vectors[0].vector_id,
        meta={"batch_members": [v.vector_id for v in vectors]},
    )


def split_assignment(vectors, assignment) -> list[list[int]]:
    """De-multiplex a merged pair→device assignment into member slices.

    Returns one ``list[int]`` per member, index-aligned with that
    member's own ``pairs`` — exactly the shape per-vector fault
    recovery (:meth:`~repro.serve.server.MiccoServer._reschedule_orphans`)
    expects on each ticket.
    """
    vectors = list(vectors)
    total = sum(len(v.pairs) for v in vectors)
    if len(assignment) != total:
        raise ConfigurationError(
            f"assignment length {len(assignment)} does not match the "
            f"batch's {total} pairs"
        )
    slices: list[list[int]] = []
    offset = 0
    for v in vectors:
        slices.append(list(assignment[offset : offset + len(v.pairs)]))
        offset += len(v.pairs)
    return slices
