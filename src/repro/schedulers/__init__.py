"""Multi-GPU schedulers: MICCO (Alg. 1 + Alg. 2) and baselines.

* :class:`MiccoScheduler` — the paper's heuristic: local reuse patterns,
  reuse bounds, candidate queue, three toggling policies.
* :class:`GrouteScheduler` — earliest-available-device load balancing,
  the paper's state-of-the-art baseline.
* :class:`RoundRobinScheduler` — naive rotation.
* :class:`ExhaustiveScheduler` — brute-force oracle for tiny vectors
  (test/validation only).
"""

from repro.schedulers.base import Scheduler
from repro.schedulers.batching import (
    batch_footprint_bytes,
    batch_shape_key,
    merge_vectors,
    split_assignment,
)
from repro.schedulers.bounds import ReuseBounds, THIRTEEN_SETTINGS, enumerate_bounds
from repro.schedulers.reuse_patterns import ReusePattern, classify_pair, PairClassification
from repro.schedulers.micco import MiccoScheduler
from repro.schedulers.groute import GrouteScheduler
from repro.schedulers.roundrobin import RoundRobinScheduler
from repro.schedulers.locality import LocalityScheduler, RandomScheduler
from repro.schedulers.costgreedy import CostGreedyScheduler
from repro.schedulers.exhaustive import ExhaustiveScheduler

__all__ = [
    "Scheduler",
    "batch_footprint_bytes",
    "batch_shape_key",
    "merge_vectors",
    "split_assignment",
    "ReuseBounds",
    "THIRTEEN_SETTINGS",
    "enumerate_bounds",
    "ReusePattern",
    "classify_pair",
    "PairClassification",
    "MiccoScheduler",
    "GrouteScheduler",
    "RoundRobinScheduler",
    "LocalityScheduler",
    "RandomScheduler",
    "CostGreedyScheduler",
    "ExhaustiveScheduler",
]
