"""Cost-model-aware greedy scheduler (an upper baseline for MICCO).

For each pair, estimates the *actual completion time* on every device —
current busy time plus the fetches this placement would trigger, the
output allocation, predicted eviction cost, and the kernel — and picks
the minimum.  This is what an oracle-with-perfect-cost-model greedy
can do: stronger than Groute (it sees data placement) and than MICCO's
O(1)-per-candidate tests (it prices each candidate exactly), but
correspondingly heavier: every decision walks all devices and touches
the full cost model.

MICCO's pitch is getting most of this quality at a fraction of the
decision cost; the ablation bench quantifies both sides.
"""

from __future__ import annotations

from repro.gpusim.cluster import ClusterState
from repro.gpusim.costmodel import CostModel
from repro.schedulers.base import Scheduler
from repro.tensor.spec import TensorPair


class CostGreedyScheduler(Scheduler):
    """Minimum-estimated-completion-time placement.

    Parameters
    ----------
    cost_model:
        Must match the engine's cost model for the estimates to be
        exact (they are, up to eviction-victim prediction).
    """

    name = "cost-greedy"

    def __init__(self, cost_model: CostModel | None = None):
        self.cost_model = cost_model or CostModel()

    def estimate_added_time(self, pair: TensorPair, device_id: int, cluster: ClusterState) -> float:
        """Simulated seconds this placement adds to ``device_id``."""
        cm = self.cost_model
        added = cm.kernel_time(pair, cluster.devices[device_id])
        incoming = pair.out.nbytes
        memop = cm.alloc_time(pair.out.nbytes)
        seen: set[int] = set()
        for spec in pair.inputs:
            if spec.uid in seen or cluster.is_resident(spec.uid, device_id):
                continue
            seen.add(spec.uid)
            holders = cluster.devices_holding(spec.uid)
            if holders:
                src = min(holders)
                memop += cm.alloc_time(spec.nbytes) + cm.d2d_time(spec.nbytes, src=src, dst=device_id)
            else:
                memop += cm.alloc_time(spec.nbytes) + cm.h2d_time(spec.nbytes)
            incoming += spec.nbytes
        # Predicted eviction cost: bytes that must leave to fit.
        overflow = incoming - cluster.free_bytes(device_id)
        if overflow > 0:
            memop += cm.eviction_time(overflow)
        return added + cm.effective_memop_time(memop, added)

    def choose(self, pair: TensorPair, cluster: ClusterState) -> int:
        busy = cluster.busy_s
        best = 0
        best_t = float("inf")
        for g in range(cluster.num_devices):
            t = busy[g] + self.estimate_added_time(pair, g, cluster)
            if t < best_t:
                best, best_t = g, t
        return best
