"""Cost-model-aware greedy scheduler (an upper baseline for MICCO).

For each pair, estimates the *actual completion time* on every device —
current busy time plus the fetches this placement would trigger, the
output allocation, predicted eviction cost, and the kernel — and picks
the minimum.  This is what an oracle-with-perfect-cost-model greedy
can do: stronger than Groute (it sees data placement) and than MICCO's
O(1)-per-candidate tests (it prices each candidate exactly), but
correspondingly heavier: every decision walks all devices and touches
the full cost model.

MICCO's pitch is getting most of this quality at a fraction of the
decision cost; the ablation bench quantifies both sides.
"""

from __future__ import annotations

import numpy as np

from repro import compat
from repro.gpusim.cluster import ClusterState
from repro.gpusim.costmodel import CostModel, lex_argmin
from repro.schedulers.base import Scheduler
from repro.tensor.spec import TensorPair


class CostGreedyScheduler(Scheduler):
    """Minimum-estimated-completion-time placement.

    Parameters
    ----------
    cost_model:
        Must match the engine's cost model for the estimates to be
        exact (they are, up to eviction-victim prediction).
    """

    name = "cost-greedy"

    def __init__(self, cost_model: CostModel | None = None):
        self.cost_model = cost_model or CostModel()

    def estimate_added_time(self, pair: TensorPair, device_id: int, cluster: ClusterState) -> float:
        """Simulated seconds this placement adds to ``device_id``."""
        cm = self.cost_model
        added = cm.kernel_time(pair, cluster.devices[device_id])
        incoming = pair.out.nbytes
        memop = cm.alloc_time(pair.out.nbytes)
        seen: set[int] = set()
        for spec in pair.inputs:
            if spec.uid in seen or cluster.is_resident(spec.uid, device_id):
                continue
            seen.add(spec.uid)
            holders = cluster.devices_holding(spec.uid)
            if holders:
                src = min(holders)
                memop += cm.alloc_time(spec.nbytes) + cm.d2d_time(spec.nbytes, src=src, dst=device_id)
            else:
                memop += cm.alloc_time(spec.nbytes) + cm.h2d_time(spec.nbytes)
            incoming += spec.nbytes
        # Predicted eviction cost: bytes that must leave to fit.
        overflow = incoming - cluster.free_bytes(device_id)
        if overflow > 0:
            memop += cm.eviction_time(overflow)
        return added + cm.effective_memop_time(memop, added)

    def estimate_added_time_batch(self, pair: TensorPair, cluster: ClusterState) -> "np.ndarray":
        """:meth:`estimate_added_time` for every device, vectorised.

        Kernel time and the output allocation are device-independent,
        so they are computed once; per-device terms (input fetches,
        predicted eviction overflow) come from the cluster's batch
        reads and one array pass through the cost model.
        """
        cm = self.cost_model
        n = cluster.num_devices
        devices = range(n)
        added = np.fromiter(
            (cm.kernel_time(pair, cluster.devices[g]) for g in devices),
            dtype=np.float64, count=n,
        )
        incoming = np.full(n, pair.out.nbytes, dtype=np.int64)
        memop = np.full(n, cm.alloc_time(pair.out.nbytes), dtype=np.float64)
        left, right = pair.left, pair.right
        inputs = (left,) if right.uid == left.uid else (left, right)
        for spec in inputs:
            holders = cluster.devices_holding(spec.uid)
            alloc = cm.alloc_time(spec.nbytes)
            if holders:
                src = min(holders)
                for g in devices:
                    if g in holders:
                        continue
                    memop[g] += alloc + cm.d2d_time(spec.nbytes, src=src, dst=g)
                    incoming[g] += spec.nbytes
            else:
                memop += alloc + cm.h2d_time(spec.nbytes)
                incoming += spec.nbytes
        overflow = incoming - cluster.free_bytes_batch(list(devices))
        for g in np.flatnonzero(overflow > 0):
            memop[g] += cm.eviction_time(int(overflow[g]))
        return added + np.maximum(memop - cm.overlap_fraction * added, 0.0)

    def choose(self, pair: TensorPair, cluster: ClusterState) -> int:
        busy = cluster.busy_s
        if compat.REFERENCE_CORE:
            best = 0
            best_t = float("inf")
            for g in range(cluster.num_devices):
                t = busy[g] + self.estimate_added_time(pair, g, cluster)
                if t < best_t:
                    best, best_t = g, t
            return best
        totals = busy + self.estimate_added_time_batch(pair, cluster)
        return lex_argmin(totals)
