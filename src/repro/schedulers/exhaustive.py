"""Exhaustive oracle scheduler — brute force over every assignment.

Test/validation tool only: enumerates all ``numGPU ** numPairs``
assignments of one vector, simulates each on a cloned cluster, and
returns the assignment with the smallest makespan.  This is the
"exhaustive search [that] is easy to be proved an NP problem" the paper
rules out for production; here it calibrates how close the heuristic
gets on tiny instances.
"""

from __future__ import annotations

from itertools import product

from repro.errors import SchedulingError
from repro.gpusim.cluster import ClusterState
from repro.gpusim.costmodel import CostModel
from repro.gpusim.engine import ExecutionEngine
from repro.gpusim.metrics import ExecutionMetrics
from repro.schedulers.base import Scheduler
from repro.tensor.spec import TensorPair, VectorSpec

#: Refuse to enumerate beyond this many candidate assignments.
MAX_SEARCH_SPACE = 300_000


class ExhaustiveScheduler(Scheduler):
    """Optimal (minimum-makespan) assignment by enumeration.

    Unlike the online schedulers this one needs the whole vector up
    front: call :meth:`begin_vector` (the session does), after which
    :meth:`choose` replays the precomputed optimum pair by pair.
    """

    name = "exhaustive"

    def __init__(self, cost_model: CostModel | None = None, *, keep_outputs: bool = False):
        self.cost_model = cost_model or CostModel()
        self.keep_outputs = keep_outputs
        self._plan: list[int] = []
        self._cursor = 0
        self.best_metrics: ExecutionMetrics | None = None

    def begin_vector(self, vector: VectorSpec, cluster: ClusterState) -> None:
        self._plan = self.search(vector, cluster)
        self._cursor = 0

    def choose(self, pair: TensorPair, cluster: ClusterState) -> int:
        if self._cursor >= len(self._plan):
            raise SchedulingError("exhaustive plan exhausted; was begin_vector called?")
        g = self._plan[self._cursor]
        self._cursor += 1
        return g

    def search(self, vector: VectorSpec, cluster: ClusterState) -> list[int]:
        """Return the minimum-makespan assignment for ``vector``.

        The makespan accounts for the cluster's accumulated busy time,
        so the optimum is global-so-far, not per-vector-greedy.
        """
        n_pairs = len(vector.pairs)
        n_dev = cluster.num_devices
        space = n_dev**n_pairs
        if space > MAX_SEARCH_SPACE:
            raise SchedulingError(
                f"search space {space} exceeds limit {MAX_SEARCH_SPACE} "
                f"({n_dev} devices ** {n_pairs} pairs); exhaustive scheduling "
                "is for tiny validation instances only"
            )
        best_assignment: list[int] | None = None
        best_span = float("inf")
        best_metrics: ExecutionMetrics | None = None
        base_busy = cluster.busy_s.copy()
        for assignment in product(range(n_dev), repeat=n_pairs):
            trial = cluster.clone()
            engine = ExecutionEngine(trial, self.cost_model)
            metrics = engine.execute_vector(vector, list(assignment), keep_outputs=self.keep_outputs)
            span = float((base_busy + metrics.device_time_s).max())
            if span < best_span:
                best_span = span
                best_assignment = list(assignment)
                best_metrics = metrics
        assert best_assignment is not None  # space >= 1 always
        self.best_metrics = best_metrics
        return best_assignment
