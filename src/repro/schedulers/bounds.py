"""Reuse bounds (paper §III-B2, Table II).

A reuse bound is the slack, in tensor slots, by which one GPU's share
of the current vector may exceed the balanced share ``balanceNum`` when
that lets it reuse resident data.  MICCO keeps three bounds, one per
local-reuse tier:

* ``bounds[0]`` — ``twoRepeatedSame`` pairs (mapping 1),
* ``bounds[1]`` — ``twoRepeatedDiff`` / ``oneRepeated`` pairs (mappings 2–3),
* ``bounds[2]`` — ``twoNew`` pairs (mappings 4–7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ReuseBounds:
    """Immutable triple of per-tier reuse bounds.

    Index with the reuse tier (0–2): ``bounds[0]`` etc.
    """

    same: float = 0.0
    partial: float = 0.0
    new: float = 0.0

    def __post_init__(self):
        for name, v in (("same", self.same), ("partial", self.partial), ("new", self.new)):
            # NaN fails the finite check, not the sign check: ``nan < 0``
            # is False, and a NaN bound would silently disable the
            # availability test rather than erroring.
            if not math.isfinite(v):
                raise ConfigurationError(f"reuse bound {name!r} must be finite, got {v}")
            if v < 0:
                raise ConfigurationError(f"reuse bound {name!r} must be >= 0, got {v}")

    def __getitem__(self, tier: int) -> float:
        if tier == 0:
            return self.same
        if tier == 1:
            return self.partial
        if tier == 2:
            return self.new
        raise IndexError(f"reuse-bound tier must be 0, 1 or 2, got {tier}")

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.same, self.partial, self.new)

    @classmethod
    def zeros(cls) -> "ReuseBounds":
        """MICCO-naive: no slack, pure balance-constrained reuse."""
        return cls(0.0, 0.0, 0.0)

    def scaled(self, factor: float) -> "ReuseBounds":
        """Bounds rescaled by ``factor`` (each tier multiplied).

        Used when the device pool shrinks: with ``g`` of ``n`` devices
        surviving, ``balanceNum`` grows by ``n/g``, so scaling the
        slack by the same factor preserves each tier's slack *relative*
        to the balanced share — the reuse/balance trade-off the bounds
        were tuned for carries over to the degraded pool.
        """
        if not math.isfinite(factor) or factor < 0:
            raise ConfigurationError(f"scale factor must be finite and >= 0, got {factor}")
        return ReuseBounds(self.same * factor, self.partial * factor, self.new * factor)

    def rescaled(self, previous_alive: int, now_alive: int) -> "ReuseBounds":
        """Bounds for a pool-size change ``previous_alive → now_alive``.

        ``balanceNum = numTensor / numAliveGPU`` moves by the inverse of
        the pool-size ratio, so the slack is multiplied by
        ``previous_alive / now_alive`` to keep it proportional to the
        balanced share.  Works in both directions: a shrinking pool
        (device loss, scale-down) grows the slack, a growing pool
        (scale-up) tightens it back — applying the inverse change
        returns the original bounds.
        """
        for name, n in (("previous_alive", previous_alive), ("now_alive", now_alive)):
            if n <= 0:
                raise ConfigurationError(f"{name} must be > 0, got {n}")
        return self.scaled(previous_alive / now_alive)

    @classmethod
    def from_sequence(cls, seq) -> "ReuseBounds":
        vals = list(seq)
        if len(vals) != 3:
            raise ConfigurationError(f"reuse bounds need exactly 3 values, got {len(vals)}")
        return cls(float(vals[0]), float(vals[1]), float(vals[2]))

    def __str__(self) -> str:
        def fmt(v: float) -> str:
            return str(int(v)) if float(v).is_integer() else f"{v:g}"

        return f"({fmt(self.same)},{fmt(self.partial)},{fmt(self.new)})"


#: The thirteen bound triples measured in Fig. 8 (values 0–2).
THIRTEEN_SETTINGS: tuple[ReuseBounds, ...] = tuple(
    ReuseBounds.from_sequence(t)
    for t in [
        (0, 0, 0),
        (1, 0, 0),
        (2, 0, 0),
        (0, 1, 0),
        (0, 2, 0),
        (0, 0, 1),
        (0, 0, 2),
        (1, 1, 0),
        (0, 1, 1),
        (1, 0, 1),
        (1, 1, 1),
        (0, 2, 2),
        (2, 2, 2),
    ]
)


def enumerate_bounds(max_value: int) -> list[ReuseBounds]:
    """Every bound triple with components in ``0..max_value``.

    The offline tuner grid-searches this space (the paper bounds each
    component by ``numTensor - balanceNum``; in practice small values
    suffice and the tuner caps the grid).
    """
    if max_value < 0:
        raise ConfigurationError(f"max_value must be >= 0, got {max_value}")
    return [ReuseBounds.from_sequence(t) for t in product(range(max_value + 1), repeat=3)]


def bounds_grid(values=(0, 2, 4)) -> list[ReuseBounds]:
    """Every triple over explicit per-component ``values``.

    The tuner uses even values by default: availability counts tensor
    *slots* and each pair adds two, so odd slack values collapse onto
    their even neighbours (bound 1 admits exactly the states bound 2
    does) and only produce degenerate label ties.
    """
    vals = sorted(set(float(v) for v in values))
    if not vals:
        raise ConfigurationError("bounds_grid needs at least one value")
    return [ReuseBounds.from_sequence(t) for t in product(vals, repeat=3)]
