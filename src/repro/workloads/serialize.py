"""Workload serialization: save/replay vector streams as JSON.

Production runs want reproducible workload files: a stream captured
from the Redstar pipeline (or synthesized once) can be stored, shared,
and replayed against any scheduler/config without regenerating it.
Tensor identity is preserved exactly — the reuse structure *is* the
workload.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import WorkloadError
from repro.tensor.spec import TensorPair, TensorSpec, VectorSpec

#: Format version written into every file.
FORMAT_VERSION = 1


def _spec_to_dict(spec: TensorSpec) -> dict:
    return {
        "uid": spec.uid,
        "size": spec.size,
        "batch": spec.batch,
        "rank": spec.rank,
        "dtype_bytes": spec.dtype_bytes,
        "label": spec.label,
    }


def _spec_from_dict(d: dict) -> TensorSpec:
    return TensorSpec(
        uid=int(d["uid"]),
        size=int(d["size"]),
        batch=int(d["batch"]),
        rank=int(d["rank"]),
        dtype_bytes=int(d["dtype_bytes"]),
        label=d.get("label", ""),
    )


def stream_to_dict(vectors: list[VectorSpec]) -> dict:
    """JSON-safe representation of a vector stream.

    Tensors are stored once in a table; pairs reference uids.
    """
    tensors: dict[int, dict] = {}
    vecs = []
    for v in vectors:
        pairs = []
        for p in v.pairs:
            for spec in (p.left, p.right, p.out):
                tensors.setdefault(spec.uid, _spec_to_dict(spec))
            pairs.append({"left": p.left.uid, "right": p.right.uid, "out": p.out.uid})
        meta = {k: val for k, val in v.meta.items() if isinstance(val, (str, int, float, bool))}
        vecs.append({"vector_id": v.vector_id, "pairs": pairs, "meta": meta})
    return {"version": FORMAT_VERSION, "tensors": list(tensors.values()), "vectors": vecs}


def stream_from_dict(payload: dict) -> list[VectorSpec]:
    """Inverse of :func:`stream_to_dict`."""
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise WorkloadError(f"unsupported workload format version {version!r}")
    table = {int(d["uid"]): _spec_from_dict(d) for d in payload["tensors"]}
    vectors = []
    for v in payload["vectors"]:
        try:
            pairs = [
                TensorPair(left=table[p["left"]], right=table[p["right"]], out=table[p["out"]])
                for p in v["pairs"]
            ]
        except KeyError as e:
            raise WorkloadError(f"workload file references unknown tensor uid {e.args[0]}") from None
        vectors.append(VectorSpec(pairs=pairs, vector_id=int(v["vector_id"]), meta=dict(v.get("meta", {}))))
    return vectors


def save_stream(vectors: list[VectorSpec], path: str | Path) -> None:
    """Write a stream to a JSON workload file."""
    Path(path).write_text(json.dumps(stream_to_dict(vectors)))


def load_stream(path: str | Path) -> list[VectorSpec]:
    """Load a stream saved by :func:`save_stream`.

    Loaded tensor uids are the stored ones; they are disjoint from
    freshly generated uids only if the current process has not already
    produced overlapping ids — replay into a fresh process (or a reset
    cluster) for exact reproduction.
    """
    return stream_from_dict(json.loads(Path(path).read_text()))
