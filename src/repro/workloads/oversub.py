"""Memory-oversubscription helpers (Fig. 11 setup).

The paper sweeps the oversubscription rate — working-set demand as a
multiple of aggregate GPU capacity — from 125 % to 200 %.  These
helpers compute a workload's demand and back out the per-device
capacity that realises a target rate.

Demand is the *stream* working set: every distinct input tensor (one
resident copy each — cross-vector reuse needs them cached) plus the
largest single vector's outputs (outputs drain to the host between
vectors, so only one vector's worth is in flight).  Sizing from a
single vector's peak instead would leave no room for cross-vector
residency and silently disable the very reuse under study.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.tensor.spec import VectorSpec
from repro.utils.validation import check_positive


def vector_demand_bytes(vector: VectorSpec) -> int:
    """Device bytes one vector needs in isolation: unique inputs plus
    all outputs."""
    return vector.input_bytes_unique() + vector.output_bytes()


def workload_demand_bytes(vectors: list[VectorSpec]) -> int:
    """Stream working set: distinct inputs + peak in-flight outputs."""
    if not vectors:
        raise ConfigurationError("workload has no vectors")
    input_bytes: dict[int, int] = {}
    peak_outputs = 0
    for v in vectors:
        for p in v.pairs:
            input_bytes[p.left.uid] = p.left.nbytes
            input_bytes[p.right.uid] = p.right.nbytes
        peak_outputs = max(peak_outputs, v.output_bytes())
    return sum(input_bytes.values()) + peak_outputs


def capacity_for_oversubscription(vectors: list[VectorSpec], num_devices: int, rate: float) -> int:
    """Per-device capacity such that demand = ``rate`` × total capacity.

    ``rate`` > 1 oversubscribes (Fig. 11 uses 1.25–2.0); ``rate`` ≤ 1
    gives headroom.  A floor of one vector's per-device share plus one
    pair's working set is applied so execution always remains feasible.
    """
    check_positive("num_devices", num_devices)
    check_positive("rate", rate)
    demand = workload_demand_bytes(vectors)
    capacity = int(demand / (num_devices * rate))
    # A device must at least hold one pair's inputs + output.
    floor = 0
    for v in vectors:
        for p in v.pairs:
            floor = max(floor, p.left.nbytes + p.right.nbytes + p.out.nbytes)
    return max(capacity, floor)
