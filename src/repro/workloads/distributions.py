"""Selection distributions for repeated tensors.

The paper synthesizes repeated data two ways: *Uniform* — every
previously seen tensor is equally likely to reappear — and *Gaussian* —
a biased pick concentrated on a narrow band of the history, so a few
tensors reappear many times.  Bias is what stresses the reuse/balance
trade-off: clustered repeats pull work toward whichever GPU holds the
popular tensors.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction


class UniformPicker:
    """Uniformly random indices into the tensor history."""

    name = "uniform"

    def pick(self, pool_size: int, n: int, rng: np.random.Generator) -> np.ndarray:
        if pool_size <= 0:
            raise WorkloadError("cannot pick repeated tensors from an empty pool")
        return rng.integers(0, pool_size, size=n)


class GaussianPicker:
    """Gaussian-biased indices concentrated around a per-call center.

    Bias means *concentration*: within one vector, picks cluster on a
    narrow band of the history so a few tensors repeat many times.  The
    band's center is redrawn uniformly per call — the popular tensors
    shift between vectors, as they do when different contraction graphs
    share different hadron nodes.

    Parameters
    ----------
    sigma_frac:
        Standard deviation as a fraction of the pool size.  Smaller
        values concentrate the picks (stronger bias).
    """

    name = "gaussian"

    def __init__(self, sigma_frac: float = 0.05):
        check_fraction("sigma_frac", sigma_frac, inclusive=False)
        self.sigma_frac = sigma_frac

    def pick(self, pool_size: int, n: int, rng: np.random.Generator) -> np.ndarray:
        if pool_size <= 0:
            raise WorkloadError("cannot pick repeated tensors from an empty pool")
        center = rng.uniform(0, pool_size - 1)
        sigma = max(self.sigma_frac * pool_size, 0.5)
        idx = np.rint(rng.normal(center, sigma, size=n)).astype(np.int64)
        return np.clip(idx, 0, pool_size - 1)


def make_picker(distribution: str, sigma_frac: float = 0.05):
    """Factory: ``'uniform'`` or ``'gaussian'`` → picker instance."""
    if distribution == "uniform":
        return UniformPicker()
    if distribution == "gaussian":
        return GaussianPicker(sigma_frac=sigma_frac)
    raise WorkloadError(f"unknown distribution {distribution!r}; use 'uniform' or 'gaussian'")


def sample_multiplicities(picker, pool_size: int, n: int, seed=0) -> np.ndarray:
    """Histogram of pick counts — used by tests to verify bias."""
    rng = as_generator(seed)
    idx = picker.pick(pool_size, n, rng)
    return np.bincount(idx, minlength=pool_size)
