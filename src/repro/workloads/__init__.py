"""Synthetic many-body-correlation workload generators.

Produces streams of :class:`~repro.tensor.spec.VectorSpec` with the four
controllable data characteristics the paper studies (Table I): tensor
size, vector size, repeated rate, and data distribution (uniform vs
Gaussian-biased selection of repeated tensors).
"""

from repro.workloads.distributions import UniformPicker, GaussianPicker, make_picker
from repro.workloads.synth import SyntheticWorkload, WorkloadParams
from repro.workloads.characteristics import (
    DataCharacteristics,
    CharacteristicsTracker,
    judge_distribution,
)
from repro.workloads.oversub import capacity_for_oversubscription, workload_demand_bytes
from repro.workloads.serialize import save_stream, load_stream, stream_to_dict, stream_from_dict

__all__ = [
    "UniformPicker",
    "GaussianPicker",
    "make_picker",
    "SyntheticWorkload",
    "WorkloadParams",
    "DataCharacteristics",
    "CharacteristicsTracker",
    "judge_distribution",
    "capacity_for_oversubscription",
    "workload_demand_bytes",
    "save_stream",
    "load_stream",
    "stream_to_dict",
    "stream_from_dict",
]
