"""Measured data characteristics — the regression model's features.

The paper's model consumes four features per vector (Table I): vector
size, tensor size, data distribution (judged uniform vs biased), and
repeated rate (computed dynamically per vector).  This module measures
them from the vector itself plus a running set of previously seen
tensor uids; it never peeks at generator metadata, so the online path
matches what a real Redstar integration could observe.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.tensor.spec import VectorSpec

#: Feature-vector column order (stable; persisted models rely on it).
FEATURE_NAMES = ("vector_size", "tensor_size", "distribution", "repeated_rate")

#: Fraction of the uniform-expected distinct count below which the
#: repeated picks are judged biased.
BIAS_DISTINCT_RATIO = 0.75


@dataclass(frozen=True)
class DataCharacteristics:
    """One vector's measured characteristics.

    ``distribution`` is an indicator: 0.0 = uniform, 1.0 = biased.
    """

    vector_size: int
    tensor_size: int
    distribution: float
    repeated_rate: float

    def to_features(self) -> np.ndarray:
        """Feature row in :data:`FEATURE_NAMES` order."""
        return np.array(
            [self.vector_size, self.tensor_size, self.distribution, self.repeated_rate],
            dtype=np.float64,
        )


def judge_distribution(repeated_uids: list[int], pool_size: int) -> float:
    """Judge repeated-pick bias from within-vector multiplicities.

    A biased (Gaussian) picker lands many picks on the same tensors, so
    the number of *distinct* repeated uids falls well below what uniform
    sampling with replacement from a ``pool_size`` history would give
    (``P·(1 − (1 − 1/P)^n)`` — uniform sampling collides too, by the
    birthday effect, so a fixed distinct/total ratio misclassifies
    high-rate uniform vectors).  Below :data:`BIAS_DISTINCT_RATIO` of
    that expectation → biased (1.0), else uniform (0.0).  An empty or
    tiny repeated set is judged uniform.
    """
    n = len(repeated_uids)
    if n < 4 or pool_size < 1:
        return 0.0
    distinct = len(Counter(repeated_uids))
    expected = pool_size * (1.0 - (1.0 - 1.0 / pool_size) ** n)
    return 1.0 if distinct < BIAS_DISTINCT_RATIO * expected else 0.0


def measure(vector: VectorSpec, seen_uids: set[int]) -> DataCharacteristics:
    """Measure ``vector``'s characteristics against history ``seen_uids``."""
    slots: list[int] = []
    for p in vector.pairs:
        slots.append(p.left.uid)
        slots.append(p.right.uid)
    repeated = [u for u in slots if u in seen_uids]
    rate = len(repeated) / len(slots)
    return DataCharacteristics(
        vector_size=len(slots),
        tensor_size=vector.tensor_size,
        distribution=judge_distribution(repeated, len(seen_uids)),
        repeated_rate=rate,
    )


class CharacteristicsTracker:
    """Streaming measurement: feed vectors in order, get features out."""

    def __init__(self):
        self.seen_uids: set[int] = set()

    def observe(self, vector: VectorSpec) -> DataCharacteristics:
        """Measure ``vector`` then fold its tensors into the history."""
        chars = measure(vector, self.seen_uids)
        self.seen_uids.update(vector.unique_input_uids())
        return chars

    def reset(self) -> None:
        self.seen_uids.clear()
