"""Synthetic vector-stream generator.

Each generated vector has ``vector_size`` input-tensor slots: a
``repeated_rate`` fraction is drawn from the history of previously used
tensors (via the configured distribution picker), the rest are fresh
tensors.  Slots are shuffled and paired consecutively into contraction
pairs — matching the paper's evaluation setup where vector size,
tensor size, repeated rate and distribution are the swept knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro import compat
from repro.errors import WorkloadError
from repro.tensor.spec import TensorPair, TensorSpec, VectorSpec, _spec_unchecked, next_uid
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_in, check_positive
from repro.workloads.distributions import make_picker


@dataclass(frozen=True)
class WorkloadParams:
    """Knobs of the synthetic workload (the paper's Table I columns).

    Parameters
    ----------
    vector_size:
        Tensors per vector (paper sweeps 8–64).  Must be even: slots
        pair up into contractions.
    tensor_size:
        Dimension length N (paper sweeps 128–768; default 384).
    repeated_rate:
        Fraction of slots drawn from previously seen tensors.
    distribution:
        ``'uniform'`` or ``'gaussian'`` selection of repeated tensors.
    num_vectors:
        Stream length.
    batch, rank, dtype_bytes:
        Forwarded to :class:`TensorSpec`.
    sigma_frac:
        Gaussian picker concentration.
    """

    vector_size: int = 64
    tensor_size: int = 384
    repeated_rate: float = 0.5
    distribution: str = "uniform"
    num_vectors: int = 10
    batch: int = 32
    rank: int = 2
    dtype_bytes: int = 8
    sigma_frac: float = 0.05

    def __post_init__(self):
        check_positive("vector_size", self.vector_size)
        if self.vector_size % 2:
            raise WorkloadError(f"vector_size must be even (slots pair up), got {self.vector_size}")
        check_positive("tensor_size", self.tensor_size)
        check_fraction("repeated_rate", self.repeated_rate)
        check_in("distribution", self.distribution, ("uniform", "gaussian"))
        check_positive("num_vectors", self.num_vectors)
        check_positive("batch", self.batch)
        check_in("rank", self.rank, (2, 3))
        check_positive("dtype_bytes", self.dtype_bytes)

    def with_(self, **kwargs) -> "WorkloadParams":
        """Copy with overrides — convenient for experiment sweeps."""
        return replace(self, **kwargs)


class SyntheticWorkload:
    """Deterministic stream of vectors with controlled characteristics.

    Example
    -------
    >>> wl = SyntheticWorkload(WorkloadParams(vector_size=8, num_vectors=3), seed=0)
    >>> vectors = list(wl)
    >>> [len(v.pairs) for v in vectors]
    [4, 4, 4]
    """

    def __init__(self, params: WorkloadParams, seed=0):
        self.params = params
        self._rng = as_generator(seed)
        self._picker = make_picker(params.distribution, sigma_frac=params.sigma_frac)
        #: History of every input tensor ever emitted (pick pool).
        self.pool: list[TensorSpec] = []
        self._emitted = 0

    def _new_tensor(self) -> TensorSpec:
        # Params are validated at WorkloadParams construction, so the
        # unchecked spec builder is safe here (hot: one per fresh slot).
        p = self.params
        return _spec_unchecked(
            next_uid(),
            p.tensor_size,
            p.batch,
            p.rank,
            p.dtype_bytes,
            f"t{len(self.pool)}",
        )

    def next_vector(self) -> VectorSpec:
        """Generate the next vector in the stream."""
        p = self.params
        n_slots = p.vector_size
        n_repeat = int(round(p.repeated_rate * n_slots)) if self.pool else 0
        n_new = n_slots - n_repeat
        if compat.REFERENCE_CORE:
            seen_before = {t.uid for t in self.pool}

        slots: list[TensorSpec] = []
        if n_repeat:
            # .tolist() converts the drawn indices to Python ints once —
            # list indexing by numpy scalars pays __index__ per lookup.
            idx = self._picker.pick(len(self.pool), n_repeat, self._rng).tolist()
            slots.extend(self.pool[i] for i in idx)
        for _ in range(n_new):
            t = self._new_tensor()
            self.pool.append(t)
            slots.append(t)

        order = self._rng.permutation(n_slots).tolist()
        slots = [slots[i] for i in order]
        pairs = [TensorPair.make(slots[2 * i], slots[2 * i + 1]) for i in range(n_slots // 2)]

        if compat.REFERENCE_CORE:
            measured_rate = sum(1 for s in slots if s.uid in seen_before) / n_slots
        else:
            # Every repeated slot comes from the pool (seen before this
            # call) and every fresh tensor has a brand-new uid, so the
            # measured rate is exactly n_repeat / n_slots — same float,
            # without the O(pool) membership scan per vector.
            measured_rate = n_repeat / n_slots
        vec = VectorSpec(
            pairs=pairs,
            vector_id=self._emitted,
            meta={
                "declared_repeated_rate": p.repeated_rate,
                "measured_repeated_rate": measured_rate,
                "distribution": p.distribution,
                "tensor_size": p.tensor_size,
                "vector_size": n_slots,
            },
        )
        self._emitted += 1
        return vec

    def vectors(self, n: int | None = None) -> list[VectorSpec]:
        """Generate ``n`` vectors (default: ``params.num_vectors``)."""
        n = self.params.num_vectors if n is None else n
        return [self.next_vector() for _ in range(n)]

    def __iter__(self):
        for _ in range(self.params.num_vectors - self._emitted):
            yield self.next_vector()


def generate_stream(params: WorkloadParams, seed=0) -> list[VectorSpec]:
    """One-shot helper: build a workload and materialize its stream."""
    return SyntheticWorkload(params, seed=seed).vectors()
