"""Command-line entry point: run any paper experiment.

Examples
--------
::

    micco list                 # show available experiments
    micco fig7                 # quick Fig. 7 sweep
    micco tab4 --full          # full-scale Table IV (300 samples)
    python -m repro tab6       # same, via the module
"""

from __future__ import annotations

import argparse
import sys


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="micco",
        description="MICCO reproduction: run a paper table/figure experiment.",
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment id (fig5, fig7, fig8, fig9, fig10, fig11, tab4, tab5, "
            "tab6, ablations), 'all', or 'list'"
        ),
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at full paper scale (slower; default is a quick configuration)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="with 'all': also write machine-readable results to PATH",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.experiments import EXPERIMENTS

    if args.experiment == "list":
        for name, module in EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:9s} {doc}")
        return 0
    if args.experiment == "all":
        from repro.experiments.runner import run_all, save_results

        results = run_all(quick=not args.full)
        for name, entry in results.items():
            print(f"\n===== {name} =====")
            print(entry["text"])
        if args.json:
            save_results(results, args.json)
            print(f"\nmachine-readable results written to {args.json}")
        return 0
    module = EXPERIMENTS.get(args.experiment)
    if module is None:
        print(f"unknown experiment {args.experiment!r}; try 'micco list'", file=sys.stderr)
        return 2
    print(module.main(quick=not args.full))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
