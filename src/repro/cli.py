"""Command-line entry point: run any paper experiment, or serve online.

Examples
--------
::

    micco list                 # show available experiments
    micco fig7                 # quick Fig. 7 sweep
    micco tab4 --full          # full-scale Table IV (300 samples)
    micco serve --rate 500     # online serving under Poisson traffic
    micco serve --config examples/tenants.json   # multi-tenant + autoscale
    micco chaos --seed 0       # serving under seeded fault injection
    python -m repro tab6       # same, via the module
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="micco",
        description="MICCO reproduction: run a paper table/figure experiment.",
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment id (fig5, fig7, fig8, fig9, fig10, fig11, tab4, tab5, "
            "tab6, ablations), 'all', 'list', 'serve' (online serving "
            "simulator; see 'micco serve --help'), or 'chaos' (serving under "
            "fault injection; see 'micco chaos --help')"
        ),
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at full paper scale (slower; default is a quick configuration)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="with 'all': also write machine-readable results to PATH",
    )
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="micco serve",
        description=(
            "Online serving simulator: vectors arrive over simulated time, "
            "wait in a bounded admission queue, and execute under the chosen "
            "scheduler; reports latency SLO metrics (p50/p95/p99, throughput, "
            "drop rate) and writes a JSON latency report."
        ),
    )
    traffic = parser.add_argument_group("traffic")
    traffic.add_argument("--rate", type=float, default=100.0, help="mean arrival rate in vectors/second (default 100)")
    traffic.add_argument(
        "--arrivals",
        default="poisson",
        help=(
            "'poisson', 'bursty' (on/off phases at twice --rate, same mean), "
            "or a path to a JSON arrival trace written by TraceArrivals.to_json"
        ),
    )
    traffic.add_argument("--num-vectors", type=int, default=50, help="request-stream length (default 50)")
    traffic.add_argument("--seed", type=int, default=0, help="seed for workload and arrivals (default 0)")

    workload = parser.add_argument_group("workload")
    workload.add_argument("--vector-size", type=int, default=16, help="tensor slots per vector (default 16)")
    workload.add_argument("--tensor-size", type=int, default=256, help="tensor dimension length (default 256)")
    workload.add_argument("--repeated-rate", type=float, default=0.8, help="fraction of repeated tensors (default 0.8)")
    workload.add_argument("--batch", type=int, default=8, help="tensor batch dimension (default 8)")

    system = parser.add_argument_group("system")
    system.add_argument(
        "--scheduler",
        choices=("micco", "micco-naive", "groute", "roundrobin"),
        default="micco",
        help="pair->GPU scheduler under test (default micco)",
    )
    system.add_argument("--bounds", default="0,4,0", help="reuse-bound triple for --scheduler micco (default 0,4,0)")
    system.add_argument("--num-devices", type=int, default=4, help="simulated GPUs (default 4)")
    system.add_argument(
        "--config",
        metavar="PATH",
        help=(
            "ServeConfig JSON (ServeConfig.to_json): queue knobs, tenants, "
            "autoscaler and a fault plan nest inside; explicit flags override "
            "the file's values"
        ),
    )
    system.add_argument("--queue-capacity", type=int, default=None, help="admission-queue depth (default 64)")
    system.add_argument(
        "--queue-policy",
        choices=("auto", "fifo", "sjf", "weighted"),
        default=None,
        help="dispatch order (default auto: weighted-fair with tenants, else fifo)",
    )
    system.add_argument("--max-inflight", type=int, default=None, help="scheduling rounds dispatched but not complete (default 1)")
    system.add_argument(
        "--max-batch-vectors",
        type=int,
        default=None,
        help=(
            "coalesce up to this many compatible queued vectors into one "
            "scheduling round (repeated tensors placed once, reused across "
            "the round; default 1: no batching)"
        ),
    )
    system.add_argument(
        "--batch-memory-frac",
        type=float,
        default=None,
        help=(
            "cap a round's combined unique-tensor footprint at this fraction "
            "of the alive pool's memory (default 0.5)"
        ),
    )
    system.add_argument(
        "--devices-per-node",
        type=int,
        default=None,
        help=(
            "group devices into nodes of this size (multi-node topology: "
            "inter-node transfers are slower, and node_lost faults kill "
            "whole nodes); default: single-node, no topology"
        ),
    )
    system.add_argument(
        "--sharded",
        action="store_true",
        help=(
            "two-level sharded control plane: a global router routes each "
            "vector to a per-node local scheduler (needs --devices-per-node)"
        ),
    )
    system.add_argument(
        "--sync-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "with --sharded: how often node runtimes report load/residency "
            "digests to the global router (default 0.05; between syncs the "
            "router routes on stale summaries)"
        ),
    )
    system.add_argument(
        "--routing",
        # Mirrors repro.serve.ROUTING_POLICIES; kept literal so building
        # the parser (and `micco --help`) never imports the serve stack.
        choices=("least-loaded", "residency-affinity", "threshold-local", "learned"),
        default=None,
        help="with --sharded: global routing policy (default least-loaded)",
    )
    system.add_argument(
        "--explore-floor",
        type=float,
        default=None,
        metavar="FRAC",
        help=(
            "with --routing learned: probability of routing a vector to a "
            "uniformly random shard instead of the predicted-fastest one "
            "(default 0.05; 0 disables exploration)"
        ),
    )
    system.add_argument(
        "--min-samples",
        type=int,
        default=None,
        metavar="N",
        help=(
            "with --routing learned: completed-latency samples each shard "
            "must accumulate before predictions are trusted; until then the "
            "router falls back to the least-loaded ranking (default 24)"
        ),
    )
    system.add_argument(
        "--refit-interval",
        type=int,
        default=None,
        metavar="N",
        help=(
            "with --routing learned: refit each per-shard predictor after "
            "this many new samples (default 16)"
        ),
    )
    system.add_argument(
        "--health",
        action="store_true",
        help=(
            "with --sharded: heartbeat health tracking on the global tier "
            "(suspicion scoring, quarantine/probation lifecycle, forwarding "
            "circuit breakers) — the defence against gray faults that are "
            "never announced"
        ),
    )
    system.add_argument(
        "--hedge",
        action="store_true",
        help=(
            "with --health: hedged dispatch — clone tickets stuck past the "
            "hedging deadline on suspect shards; first completion wins, the "
            "loser is cancelled exactly once"
        ),
    )
    system.add_argument(
        "--warm-restore",
        action="store_true",
        help=(
            "journal residency and replay it onto devices that come online "
            "(pre-warm the hottest tensors instead of starting cold)"
        ),
    )
    system.add_argument(
        "--fault-aware",
        action="store_true",
        help=(
            "fault-aware admission: shed vectors whose estimated completion "
            "probability under the live fault rate is too low "
            "(shed reason 'predicted-infeasible')"
        ),
    )
    system.add_argument(
        "--verify",
        choices=("off", "spot", "suspect-full"),
        default=None,
        help=(
            "result integrity mode: 'spot' audits a deterministic sample of "
            "pair outputs by recomputing them on a second device (the "
            "recompute doubles as the repair); 'suspect-full' escalates to "
            "auditing every pair of any ticket touching a blamed device "
            "(default off)"
        ),
    )
    system.add_argument(
        "--faults",
        metavar="PLAN",
        help="JSON fault plan (FaultPlan.to_json) to inject during the run",
    )

    output = parser.add_argument_group("output")
    output.add_argument("--json", metavar="PATH", default="serve_report.json", help="latency report path (default serve_report.json)")
    output.add_argument("--trace", metavar="PATH", help="also write a Chrome-trace of per-vector lifecycles")
    return parser


def build_chaos_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="micco chaos",
        description=(
            "Chaos-test the online serving loop: inject a seeded fault plan "
            "(transient kernel faults, permanent device loss, stragglers, "
            "transfer failures, silent data corruption) while vectors arrive "
            "over simulated time, and "
            "report recovery behaviour — retried/recovered counts, per-fault "
            "recovery latency, availability — alongside the latency SLOs.  "
            "Identical seeds give byte-identical reports."
        ),
        parents=[build_serve_parser()],
        add_help=False,  # the serve parent already contributes -h/--help
        conflict_handler="resolve",
    )
    faults = parser.add_argument_group("fault plan (ignored with --faults)")
    faults.add_argument("--kill", type=int, default=1, help="devices to lose permanently (default 1)")
    faults.add_argument(
        "--kill-nodes",
        type=int,
        default=0,
        help=(
            "whole nodes to lose permanently (correlated node_lost faults; "
            "needs --devices-per-node to expand beyond one device; default 0)"
        ),
    )
    faults.add_argument(
        "--cut-links",
        type=int,
        default=0,
        help=(
            "nodes whose inter-node links to sever (link_lost faults: the "
            "node's devices stay alive but cross-node fetches are staged "
            "through the host; needs --devices-per-node; default 0)"
        ),
    )
    faults.add_argument(
        "--flap-nodes",
        type=int,
        default=0,
        help=(
            "nodes to flap (node_flap gray faults: repeated short down/up "
            "cycles, never announced to the router; needs --devices-per-node "
            "to expand beyond one device; default 0)"
        ),
    )
    faults.add_argument(
        "--silence-nodes",
        type=int,
        default=0,
        help=(
            "nodes to silence (heartbeat_loss gray faults: devices keep "
            "executing but report nothing for a window; needs "
            "--devices-per-node; default 0)"
        ),
    )
    faults.add_argument(
        "--corrupt-devices",
        type=int,
        default=0,
        help=(
            "devices given a silent data_corruption window (each pair "
            "computed inside it flips a biased coin and may produce a wrong "
            "result without any error signal; pair with --verify to detect; "
            "default 0)"
        ),
    )
    faults.add_argument(
        "--bitflips",
        type=int,
        default=0,
        help=(
            "tensor_bitflip faults to inject (each corrupts the lowest-uid "
            "tensor resident on a device in place; default 0)"
        ),
    )
    faults.add_argument(
        "--corruption-prob",
        type=float,
        default=0.5,
        metavar="P",
        help=(
            "per-pair corruption probability inside a data_corruption "
            "window (default 0.5)"
        ),
    )
    faults.add_argument("--transient", type=int, default=2, help="transient kernel faults to inject (default 2)")
    faults.add_argument("--transfer", type=int, default=2, help="transfer faults to inject (default 2)")
    faults.add_argument("--stragglers", type=int, default=1, help="straggler windows to open (default 1)")
    faults.add_argument("--straggler-factor", type=float, default=4.0, help="straggler kernel-time multiplier (default 4)")
    faults.add_argument("--no-recovery", action="store_true", help="shed fault-affected vectors instead of re-scheduling them")
    faults.add_argument("--save-plan", metavar="PATH", help="also write the (generated or loaded) fault plan as JSON")
    parser.set_defaults(json="chaos_report.json")
    return parser


def run_serve(argv: list[str], *, chaos: bool = False) -> int:
    import json

    from repro.errors import ReproError

    prog = "chaos" if chaos else "serve"
    try:
        return _run_serve(argv, chaos=chaos)
    except json.JSONDecodeError as exc:
        # A config / arrivals / fault-plan file that exists but is not
        # valid JSON is a user error too, not a crash.
        print(f"micco {prog}: error: malformed JSON input: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        # Bad knob values (negative rate, odd vector size, ...) are user
        # errors, not crashes: report them like argparse would.
        print(f"micco {prog}: error: {exc}", file=sys.stderr)
        return 2


def _run_serve(argv: list[str], *, chaos: bool = False) -> int:
    args = (build_chaos_parser() if chaos else build_serve_parser()).parse_args(argv)
    from repro.core.config import MiccoConfig
    from repro.faults import FaultPlan
    from repro.schedulers.bounds import ReuseBounds
    from repro.schedulers.groute import GrouteScheduler
    from repro.schedulers.micco import MiccoScheduler
    from repro.schedulers.roundrobin import RoundRobinScheduler
    from repro.serve import (
        BurstyArrivals,
        HealthConfig,
        IntegrityConfig,
        PoissonArrivals,
        ServeConfig,
        TraceArrivals,
        serve,
    )
    from repro.workloads import SyntheticWorkload, WorkloadParams

    schedulers = {
        "micco": lambda: MiccoScheduler(ReuseBounds.from_sequence(args.bounds.split(","))),
        "micco-naive": lambda: MiccoScheduler(ReuseBounds.zeros()),
        "groute": lambda: GrouteScheduler(),
        "roundrobin": lambda: RoundRobinScheduler(),
    }

    # The config file is the base; explicit flags override its values.
    if args.config:
        config_path = Path(args.config)
        if not config_path.exists():
            print(f"serve config {args.config!r} does not exist", file=sys.stderr)
            return 2
        serve_cfg = ServeConfig.from_json(config_path)
    else:
        serve_cfg = ServeConfig()
    overrides = {}
    if args.queue_capacity is not None:
        overrides["queue_capacity"] = args.queue_capacity
    if args.queue_policy is not None:
        overrides["queue_policy"] = args.queue_policy
    if args.max_inflight is not None:
        overrides["max_inflight"] = args.max_inflight
    if args.max_batch_vectors is not None:
        overrides["max_batch_vectors"] = args.max_batch_vectors
    if args.batch_memory_frac is not None:
        overrides["batch_memory_frac"] = args.batch_memory_frac
    if args.sharded:
        overrides["sharded"] = True
    if args.sync_interval is not None:
        overrides["sync_interval_s"] = args.sync_interval
    if args.routing is not None:
        overrides["routing"] = args.routing
    if args.explore_floor is not None:
        overrides["explore_floor"] = args.explore_floor
    if args.min_samples is not None:
        overrides["min_samples"] = args.min_samples
    if args.refit_interval is not None:
        overrides["refit_interval"] = args.refit_interval
    if args.health or args.hedge:
        # --hedge implies --health; either flag layers onto any health
        # block the config file already carries.
        base = serve_cfg.health or HealthConfig()
        overrides["health"] = base.with_(hedging=base.hedging or args.hedge)
    if args.verify is not None:
        # --verify layers onto any integrity block the config carries,
        # mirroring how --health layers onto an existing health block.
        base = serve_cfg.integrity or IntegrityConfig()
        overrides["integrity"] = base.with_(mode=args.verify)
    if args.warm_restore:
        overrides["warm_restore"] = True
    if args.fault_aware:
        overrides["fault_aware_admission"] = True
    if chaos and args.no_recovery:
        overrides["recover_faults"] = False
    if overrides:
        serve_cfg = serve_cfg.with_(**overrides)

    # Multi-node topology: slower inter-node links, and node_lost fault
    # events expand to every device of the named node.
    micco_cfg = MiccoConfig(num_devices=args.num_devices)
    if args.devices_per_node is not None:
        from repro.gpusim import CostModel, Topology

        topo = Topology(
            num_devices=args.num_devices, devices_per_node=args.devices_per_node
        )
        micco_cfg = MiccoConfig(
            num_devices=args.num_devices, cost_model=CostModel(topology=topo)
        )

    if args.arrivals == "poisson":
        arrivals = PoissonArrivals(args.rate)
    elif args.arrivals == "bursty":
        arrivals = BurstyArrivals(rate_on=2 * args.rate, rate_off=0.0, mean_on_s=0.5, mean_off_s=0.5)
    else:
        path = Path(args.arrivals)
        if not path.exists():
            print(f"unknown arrival process {args.arrivals!r}: not 'poisson', 'bursty' or an existing JSON trace", file=sys.stderr)
            return 2
        arrivals = TraceArrivals.from_json(path)

    plan = None
    if args.faults:
        plan_path = Path(args.faults)
        if not plan_path.exists():
            print(f"fault plan {args.faults!r} does not exist", file=sys.stderr)
            return 2
        plan = FaultPlan.from_json(plan_path)
    elif serve_cfg.faults is not None:
        plan = serve_cfg.faults
    elif chaos:
        # No explicit plan: draw one from the seed over the expected
        # arrival span, so the same seed replays the same chaos.
        plan = FaultPlan.generate(
            args.seed,
            num_devices=args.num_devices,
            horizon_s=args.num_vectors / args.rate,
            n_transient=args.transient,
            n_transfer=args.transfer,
            n_straggler=args.stragglers,
            n_device_lost=args.kill,
            n_node_lost=args.kill_nodes,
            n_link_lost=args.cut_links,
            n_node_flap=args.flap_nodes,
            n_heartbeat_loss=args.silence_nodes,
            n_data_corruption=args.corrupt_devices,
            n_tensor_bitflip=args.bitflips,
            straggler_factor=args.straggler_factor,
            corruption_prob=args.corruption_prob,
        )
    if chaos and args.save_plan and plan is not None:
        plan.to_json(args.save_plan)
        print(f"fault plan written to {args.save_plan}")

    # One entry point for every mode: serve() picks MiccoServer /
    # MultiTenantServer / ShardedServer from the ServeConfig alone.
    if serve_cfg.tenants:
        # Multi-tenant mode: the tenant specs define the traffic, so the
        # single-stream workload/arrival flags are unused.
        result = serve(
            serve_cfg,
            cluster=micco_cfg,
            scheduler=schedulers[args.scheduler](),
            seed=args.seed,
            faults=plan,
        )
        traffic = f"{len(serve_cfg.tenants)} tenants"
    else:
        params = WorkloadParams(
            vector_size=args.vector_size,
            tensor_size=args.tensor_size,
            repeated_rate=args.repeated_rate,
            num_vectors=args.num_vectors,
            batch=args.batch,
        )
        vectors = SyntheticWorkload(params, seed=args.seed).vectors()
        result = serve(
            serve_cfg,
            cluster=micco_cfg,
            scheduler=schedulers[args.scheduler](),
            vectors=vectors,
            arrivals=arrivals,
            seed=args.seed,
            faults=plan,
        )
        traffic = f"{args.arrivals} arrivals, mean rate {args.rate:g}/s"

    s = result.summary()
    print(f"served {s['completed']}/{s['offered']} vectors with {args.scheduler} ({traffic})")
    print(f"  latency   p50 {s['p50_s'] * 1e3:8.3f} ms   p95 {s['p95_s'] * 1e3:8.3f} ms   p99 {s['p99_s'] * 1e3:8.3f} ms")
    print(f"  throughput {s['throughput_vps']:8.1f} vectors/s   drop rate {s['drop_rate']:.1%} ({s['dropped']} shed)")
    print(f"  queue      peak depth {s['queue']['peak_depth']} / capacity {s['queue']['capacity']} ({s['queue']['policy']})")
    b = s["batching"]
    if b["batched_rounds"]:
        print(
            f"  batching   {b['rounds']} rounds ({b['batched_rounds']} batched, "
            f"mean {b['mean_round_vectors']:.2f} vectors/round, "
            f"max {b['max_round_vectors']})   "
            f"amortized dispatch {b['amortized_schedule_s'] * 1e3:.3f} ms"
        )
    if result.sharding is not None:
        sh = result.sharding
        alive = sum(1 for x in sh["shards"] if not x["dead"])
        print(
            f"  sharding   {sh['num_shards']} shard(s), {alive} alive   "
            f"routing {sh['routing']} (sync every {sh['sync_interval_s']:g}s, "
            f"{sh['syncs']} syncs)   "
            f"{sh['forwards']} forward(s), {sh['rerouted']} rerouted, "
            f"{sh['cross_node_fetches']} cross-node fetch(es)"
        )
    if result.routing is not None:
        r = result.routing
        errs = [
            s["mean_abs_err_ms"]
            for s in r["per_shard"].values()
            if s["mean_abs_err_ms"] is not None
        ]
        err = f"{sum(errs) / len(errs):.3f} ms" if errs else "n/a"
        print(
            f"  routing    learned: {r['learned']} predicted, "
            f"{r['fallback']} cold-start fallback(s), {r['explored']} explored "
            f"(floor {r['explore_floor']:g})   mean |err| {err}"
        )
    if result.tenants is not None:
        for name, sec in result.tenants.items():
            t = sec["summary"]
            verdict = "slo ok" if sec["slo"]["attained"] else "slo MISS"
            print(
                f"  tenant     {name:<12} weight {sec['weight']:g}   "
                f"p99 {t['p99_s'] * 1e3:8.3f} ms   "
                f"drop rate {t['drop_rate']:.1%} ({t['completed']}/{t['offered']})   {verdict}"
            )
    if result.autoscale is not None:
        a = result.autoscale
        print(
            f"  autoscale  {a['scale_ups']} scale-up(s), {a['scale_downs']} scale-down(s) "
            f"within [{a['min_devices']}, {a['max_devices']}] devices"
        )
    if result.faults is not None:
        f = result.faults
        injected = ", ".join(f"{k} {v}" for k, v in f["injected"].items() if v)
        print(f"  faults     injected: {injected or 'none'}")
        print(
            f"  recovery   {f['transient_recovered']} kernels retried ok, "
            f"{f['transfer_refetches']} host re-fetches, "
            f"{f['rescheduled_pairs']} pairs re-scheduled after "
            f"{f['device_losses']} device loss(es)"
        )
        print(
            f"  health     availability {f['availability_pct']:.1f}%   "
            f"degraded {f['degraded_device_s'] * 1e3:.1f} device-ms   "
            f"abandoned {f['transient_abandoned']}"
        )
        if f.get("node_losses"):
            print(
                f"  domains    {f['node_losses']} node loss(es), "
                f"{f['cross_node_fetches']} cross-node re-fetch(es)"
            )
        if f.get("prewarmed_tensors") or f.get("predicted_infeasible"):
            print(
                f"  resilience {f['prewarmed_tensors']} tensor(s) pre-warmed, "
                f"{f['predicted_infeasible']} vector(s) shed predicted-infeasible"
            )
    if result.health is not None:
        h = result.health
        hedges = h["hedges"]
        print(
            f"  gray       {len(h['quarantine_episodes'])} quarantine(s), "
            f"{h['missed']} missed heartbeat(s), "
            f"{h['breakers']['opens']} breaker open(s)   "
            f"hedges: {hedges['launched']} launched, "
            f"{hedges['won_by_clone']} won by clone, "
            f"{hedges['cancelled']} cancelled"
        )
    if result.integrity is not None:
        it = result.integrity
        quarantined = it["blame"]["quarantined"]
        print(
            f"  integrity  {it['detected']}/{it['injected']} corruption(s) "
            f"detected ({it['detection_rate']:.0%})   "
            f"{it['repaired']} repaired, {it['flagged']} flagged, "
            f"{it['escaped']} escaped   "
            f"audited {it['audited_pairs']} pair(s) "
            f"(overhead {it['audit_overhead_frac']:.1%})   "
            f"quarantined: "
            f"{', '.join(str(d) for d in quarantined) if quarantined else 'none'}"
        )

    extra = {
        "config": {
            "scheduler": args.scheduler,
            "arrivals": args.arrivals,
            "rate": args.rate,
            "num_devices": args.num_devices,
            "seed": args.seed,
            "serve": serve_cfg.to_dict(),
        },
        "queue": s["queue"],
    }
    if serve_cfg.tenants:
        extra["config"]["arrivals"] = "tenants"
    if result.faults is not None and plan is not None:
        extra["fault_plan"] = plan.to_dicts()
    result.to_json(args.json, extra=extra)
    print(f"latency report written to {args.json}")
    if args.trace:
        result.to_trace().save_chrome_trace(args.trace)
        print(f"chrome trace written to {args.trace}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        return run_serve(argv[1:])
    if argv and argv[0] == "chaos":
        return run_serve(argv[1:], chaos=True)
    args = build_parser().parse_args(argv)
    from repro.experiments import EXPERIMENTS

    if args.experiment == "list":
        for name, module in EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:9s} {doc}")
        print("serve     Online serving simulator (see 'micco serve --help').")
        print("chaos     Serving under seeded fault injection (see 'micco chaos --help').")
        return 0
    if args.experiment == "all":
        from repro.experiments.runner import run_all, save_results

        results = run_all(quick=not args.full)
        for name, entry in results.items():
            print(f"\n===== {name} =====")
            print(entry["text"])
        if args.json:
            save_results(results, args.json)
            print(f"\nmachine-readable results written to {args.json}")
        return 0
    module = EXPERIMENTS.get(args.experiment)
    if module is None:
        print(f"unknown experiment {args.experiment!r}; try 'micco list'", file=sys.stderr)
        return 2
    print(module.main(quick=not args.full))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
