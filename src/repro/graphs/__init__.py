"""Contraction-graph substrate (the structure Redstar computes on).

A quark propagation diagram is an undirected multigraph whose nodes are
hadrons (with quarks as internal slots) and whose edges are quark
propagations.  *Graph contraction* reduces edges one after another —
each reduction is one hadron contraction (a tensor pair) — until two
nodes remain.  Dependency analysis partitions the hadron contractions
of many graphs into sequential *stages* of independent pairs, which
become the scheduler's input vectors.
"""

from repro.graphs.hadron import HadronNode, meson, baryon
from repro.graphs.contraction_graph import ContractionGraph, ContractionStep, contract_graph
from repro.graphs.stages import StagePlan, build_stage_plan, stages_to_vectors

__all__ = [
    "HadronNode",
    "meson",
    "baryon",
    "ContractionGraph",
    "ContractionStep",
    "contract_graph",
    "StagePlan",
    "build_stage_plan",
    "stages_to_vectors",
]
