"""Dependency-analysis stage partitioning (paper Fig. 1).

All contraction steps of a correlator's graphs are grouped by
dependency depth: stage *k* holds steps whose inputs are original
hadrons or stage-<k outputs.  Steps within a stage are independent, so
each stage becomes one or more scheduler vectors.  Steps are
deduplicated by output tensor — an interned intermediate shared by many
graphs is computed once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GraphError
from repro.graphs.contraction_graph import ContractionStep
from repro.tensor.spec import TensorPair, VectorSpec
from repro.utils.validation import check_positive


@dataclass
class StagePlan:
    """Steps grouped into sequential stages of independent contractions."""

    stages: list[list[ContractionStep]] = field(default_factory=list)

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def total_steps(self) -> int:
        return sum(len(s) for s in self.stages)

    def validate(self) -> None:
        """Check the stage invariant: every input of a stage-k step is
        produced strictly earlier (or is an original hadron)."""
        produced_by_stage: dict[int, int] = {}
        for k, stage in enumerate(self.stages):
            for step in stage:
                produced_by_stage[step.out.uid] = k
        for k, stage in enumerate(self.stages):
            for step in stage:
                for uid in (step.left.uid, step.right.uid):
                    born = produced_by_stage.get(uid)
                    if born is not None and born >= k:
                        raise GraphError(
                            f"stage {k} consumes tensor {uid} produced in stage {born}"
                        )


def build_stage_plan(steps: list[ContractionStep]) -> StagePlan:
    """Group deduplicated steps by depth into a :class:`StagePlan`."""
    seen: set[int] = set()
    by_depth: dict[int, list[ContractionStep]] = {}
    for step in steps:
        if step.out.uid in seen:
            continue  # interned intermediate already planned
        seen.add(step.out.uid)
        by_depth.setdefault(step.depth, []).append(step)
    plan = StagePlan(stages=[by_depth[d] for d in sorted(by_depth)])
    plan.validate()
    return plan


def stages_to_vectors(plan: StagePlan, max_vector_size: int = 64, start_id: int = 0) -> list[VectorSpec]:
    """Chunk each stage into vectors of at most ``max_vector_size`` tensors.

    ``max_vector_size`` counts tensor slots (2 per pair), matching the
    paper's vector-size definition.
    """
    check_positive("max_vector_size", max_vector_size)
    max_pairs = max(1, max_vector_size // 2)
    vectors: list[VectorSpec] = []
    vid = start_id
    for stage_idx, stage in enumerate(plan.stages):
        for i in range(0, len(stage), max_pairs):
            chunk = stage[i : i + max_pairs]
            pairs = [s.to_pair() for s in chunk]
            vectors.append(
                VectorSpec(pairs=pairs, vector_id=vid, meta={"stage": stage_idx})
            )
            vid += 1
    return vectors
