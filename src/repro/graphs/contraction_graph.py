"""Contraction graphs and the edge-reduction (graph contraction) process.

A graph's nodes carry tensors; its edges are quark propagations.  One
*contraction step* merges the two endpoints of an edge — a hadron
contraction of their tensors — consuming every parallel edge between
them.  Steps repeat until two nodes remain (the paper's stopping rule);
the final two-node contraction plus trace is the correlator value and
is evaluated host-side.

Intermediate tensors are *interned*: merging the same pair of input
tensors anywhere (same graph or another diagram) yields the same output
:class:`TensorSpec`.  Overlapping reduction paths across the thousands
of diagrams of one correlator therefore share intermediates — the
data-reuse structure MICCO exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GraphError
from repro.tensor.contraction import output_spec
from repro.tensor.spec import TensorPair, TensorSpec


@dataclass(frozen=True)
class ContractionStep:
    """One hadron contraction produced by graph contraction."""

    left: TensorSpec
    right: TensorSpec
    out: TensorSpec
    depth: int

    def to_pair(self) -> TensorPair:
        return TensorPair(left=self.left, right=self.right, out=self.out)


class InternTable:
    """Hash-consing of contraction outputs across graphs.

    Keyed by the unordered input-uid pair; the stored spec carries the
    canonical operand order (smaller uid first) so numeric evaluation
    is reproducible.
    """

    def __init__(self):
        self._table: dict[tuple[int, int], TensorSpec] = {}
        self.hits = 0

    def output_for(self, a: TensorSpec, b: TensorSpec) -> TensorSpec:
        key = (a.uid, b.uid) if a.uid <= b.uid else (b.uid, a.uid)
        spec = self._table.get(key)
        if spec is not None:
            self.hits += 1
            return spec
        spec = output_spec(a, b, label=f"i{len(self._table)}")
        self._table[key] = spec
        return spec

    def __len__(self) -> int:
        return len(self._table)


@dataclass
class ContractionGraph:
    """An undirected multigraph of hadron tensors.

    Parameters
    ----------
    nodes:
        node id → tensor.
    edges:
        List of ``(node_id, node_id)`` quark propagations; parallel
        edges allowed, self-loops not (a self-loop is an internal trace
        handled inside the hadron's own tensor).
    graph_id:
        Diagram index within its correlator.
    """

    nodes: dict[str, TensorSpec]
    edges: list[tuple[str, str]]
    graph_id: int = 0

    def __post_init__(self):
        if len(self.nodes) < 2:
            raise GraphError(f"graph {self.graph_id} needs at least 2 nodes, got {len(self.nodes)}")
        for a, b in self.edges:
            if a not in self.nodes or b not in self.nodes:
                raise GraphError(f"edge ({a!r}, {b!r}) references unknown node")
            if a == b:
                raise GraphError(f"self-loop on {a!r}: internal traces are not graph edges")

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def canonical_key(self) -> tuple:
        """Isomorphism-robust-enough dedup key: sorted edge multiset
        over tensor uids (node identity is the tensor)."""
        uid = {n: t.uid for n, t in self.nodes.items()}
        pairs = sorted(tuple(sorted((uid[a], uid[b]))) for a, b in self.edges)
        return tuple(pairs)


def contract_graph(graph: ContractionGraph, intern: InternTable, depths: dict[int, int] | None = None) -> list[ContractionStep]:
    """Reduce ``graph`` to two nodes; return the contraction steps.

    Strategy: repeatedly merge the node pair connected by the most
    parallel edges (ties broken lexicographically) — heavy pairs first
    shrinks intermediate fan-out, mirroring Redstar's "optimal
    evaluation strategy" preprocessing.  ``depths`` maps tensor uid →
    dependency depth and is shared across graphs so interned
    intermediates keep one consistent depth.
    """
    if depths is None:
        depths = {}
    nodes = dict(graph.nodes)
    # Multiplicity map over unordered node-id pairs.
    mult: dict[tuple[str, str], int] = {}
    for a, b in graph.edges:
        key = (a, b) if a <= b else (b, a)
        mult[key] = mult.get(key, 0) + 1

    steps: list[ContractionStep] = []
    while len(nodes) > 2 and mult:
        (a, b), _ = max(mult.items(), key=lambda kv: (kv[1], kv[0]))
        left, right = nodes[a], nodes[b]
        if left.uid > right.uid:
            left, right = right, left
        out = intern.output_for(left, right)
        depth = max(depths.get(left.uid, 0), depths.get(right.uid, 0)) + 1
        prior = depths.get(out.uid)
        depths[out.uid] = depth if prior is None else max(prior, depth)
        steps.append(ContractionStep(left=left, right=right, out=out, depth=depths[out.uid]))

        # Merge b into a: a now carries the output tensor.
        merged = f"({a}+{b})"
        nodes.pop(a)
        nodes.pop(b)
        nodes[merged] = out
        new_mult: dict[tuple[str, str], int] = {}
        for (x, y), m in mult.items():
            if {x, y} == {a, b}:
                continue  # consumed by this contraction
            nx = merged if x in (a, b) else x
            ny = merged if y in (a, b) else y
            if nx == ny:
                continue  # became an internal trace
            key = (nx, ny) if nx <= ny else (ny, nx)
            new_mult[key] = new_mult.get(key, 0) + m
        mult = new_mult
    return steps
