"""Hadron nodes: quark content plus the batched tensor that represents them.

A hadron node is the graph-level identity (which hadron, which side of
the correlator, which time slice); the attached
:class:`~repro.tensor.spec.TensorSpec` is the data the schedulers move.
The same hadron node appearing in many diagrams carries the *same*
tensor — that identity sharing is the paper's source of data reuse.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GraphError
from repro.tensor.spec import TensorSpec, next_uid

#: Quark flavors used by the analog datasets.
FLAVORS = ("u", "d", "s", "ubar", "dbar", "sbar")


@dataclass(frozen=True)
class HadronNode:
    """One hadron in a correlator.

    Parameters
    ----------
    name:
        Human-readable id, e.g. ``"src:pi+0@t3"``.
    quarks:
        Quark flavor content; 2 slots for a meson (quark + antiquark),
        3 for a baryon.
    tensor:
        The batched tensor attached to this hadron.
    """

    name: str
    quarks: tuple[str, ...]
    tensor: TensorSpec

    def __post_init__(self):
        if len(self.quarks) not in (2, 3):
            raise GraphError(
                f"hadron {self.name!r} must have 2 (meson) or 3 (baryon) quarks, got {len(self.quarks)}"
            )
        for q in self.quarks:
            if q not in FLAVORS:
                raise GraphError(f"unknown quark flavor {q!r} in hadron {self.name!r}")
        expected_rank = len(self.quarks)
        if self.tensor.rank != expected_rank:
            raise GraphError(
                f"hadron {self.name!r} with {len(self.quarks)} quarks needs a rank-{expected_rank} "
                f"tensor, got rank {self.tensor.rank}"
            )

    @property
    def is_meson(self) -> bool:
        return len(self.quarks) == 2

    @property
    def is_baryon(self) -> bool:
        return len(self.quarks) == 3


def meson(name: str, quark: str, antiquark: str, *, size: int, batch: int = 32, dtype_bytes: int = 8) -> HadronNode:
    """Build a meson node with a fresh rank-2 tensor."""
    spec = TensorSpec(uid=next_uid(), size=size, batch=batch, rank=2, dtype_bytes=dtype_bytes, label=name)
    return HadronNode(name=name, quarks=(quark, antiquark), tensor=spec)


def baryon(name: str, q1: str, q2: str, q3: str, *, size: int, batch: int = 32, dtype_bytes: int = 8) -> HadronNode:
    """Build a baryon node with a fresh rank-3 tensor."""
    spec = TensorSpec(uid=next_uid(), size=size, batch=batch, rank=3, dtype_bytes=dtype_bytes, label=name)
    return HadronNode(name=name, quarks=(q1, q2, q3), tensor=spec)
