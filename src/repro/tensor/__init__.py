"""Tensor substrate: symbolic tensor metadata plus real numeric kernels.

The scheduler layer works on :class:`TensorSpec` metadata (identity,
shape, byte size).  The numeric layer (:mod:`repro.tensor.storage`,
:mod:`repro.tensor.contraction`) holds actual NumPy-backed batched
tensors and executes hadron contractions with ``einsum``/``matmul`` so
correctness of the contraction math is real, while device timing comes
from the multi-GPU simulator.
"""

from repro.tensor.spec import TensorSpec, TensorPair, VectorSpec, next_uid, reset_uid_counter
from repro.tensor.flops import pair_flops, pair_bytes, vector_flops, contraction_flops
from repro.tensor.storage import TensorStore
from repro.tensor.contraction import (
    contract_pair,
    meson_contract,
    baryon_contract,
    output_spec,
)

__all__ = [
    "TensorSpec",
    "TensorPair",
    "VectorSpec",
    "next_uid",
    "reset_uid_counter",
    "pair_flops",
    "pair_bytes",
    "vector_flops",
    "contraction_flops",
    "TensorStore",
    "contract_pair",
    "meson_contract",
    "baryon_contract",
    "output_spec",
]
