"""Host-side tensor storage with lazy, deterministic materialization.

:class:`TensorStore` plays the role of CPU (host) memory in the paper's
setting: every input tensor lives on the host and is copied to a GPU on
first use.  Data is materialized lazily from a per-uid seeded RNG so
that (a) huge workloads can be scheduled without allocating numerics,
and (b) when numerics *are* needed (correctness tests, examples), the
values are reproducible functions of the tensor identity.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.tensor.spec import TensorPair, TensorSpec
from repro.tensor.contraction import contract_pair


class TensorStore:
    """Maps :class:`TensorSpec` uids to NumPy arrays.

    Parameters
    ----------
    seed:
        Base seed mixed with each tensor uid for materialization.
    dtype:
        NumPy dtype of materialized data (complex64 by default,
        matching :data:`repro.tensor.spec.COMPLEX64_BYTES`).
    """

    def __init__(self, seed: int = 0, dtype=np.complex64):
        self._seed = int(seed)
        self._dtype = np.dtype(dtype)
        self._data: dict[int, np.ndarray] = {}

    def __contains__(self, uid: int) -> bool:
        return uid in self._data

    def __len__(self) -> int:
        return len(self._data)

    @property
    def nbytes(self) -> int:
        """Host bytes currently materialized."""
        return sum(a.nbytes for a in self._data.values())

    def materialize(self, spec: TensorSpec) -> np.ndarray:
        """Return the array for ``spec``, generating it on first access.

        Values are drawn from ``default_rng(seed ^ hash(uid))`` so the
        same uid always yields the same data, independent of access
        order.
        """
        arr = self._data.get(spec.uid)
        if arr is None:
            rng = np.random.default_rng((self._seed << 32) ^ (spec.uid * 0x9E3779B1 & 0xFFFFFFFF))
            real = rng.standard_normal(spec.shape, dtype=np.float32)
            imag = rng.standard_normal(spec.shape, dtype=np.float32)
            arr = (real + 1j * imag).astype(self._dtype)
            self._data[spec.uid] = arr
        return arr

    def put(self, spec: TensorSpec, array: np.ndarray) -> None:
        """Store an explicit array (e.g. a contraction output)."""
        if tuple(array.shape) != spec.shape:
            raise ReproError(f"array shape {array.shape} does not match spec shape {spec.shape}")
        self._data[spec.uid] = np.asarray(array, dtype=self._dtype)

    def get(self, uid: int) -> np.ndarray:
        """Return a previously materialized array; KeyError if absent."""
        try:
            return self._data[uid]
        except KeyError:
            raise ReproError(f"tensor uid {uid} has not been materialized") from None

    def execute_pair(self, pair: TensorPair) -> np.ndarray:
        """Materialize inputs, run the real contraction, store the output."""
        a = self.materialize(pair.left)
        b = self.materialize(pair.right)
        out = contract_pair(a, b)
        self._data[pair.out.uid] = out
        return out

    def evict(self, uid: int) -> None:
        """Drop a materialized array to bound host memory."""
        self._data.pop(uid, None)

    def clear(self) -> None:
        self._data.clear()
