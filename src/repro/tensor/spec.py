"""Symbolic tensor metadata — the currency of the scheduling layer.

A *tensor* here is what the paper attaches to a hadron node: a batched
matrix (meson systems, rank 2) or a batched rank-3 tensor (baryon
systems).  Identity matters more than value for scheduling: two pairs
that reference the same :class:`TensorSpec` ``uid`` can reuse a single
GPU-resident copy, which is exactly the data-reuse opportunity MICCO
exploits.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Bytes per element for single-precision complex (the Redstar default).
COMPLEX64_BYTES = 8
#: Bytes per element for double-precision complex.
COMPLEX128_BYTES = 16

_uid_lock = threading.Lock()
_uid_counter = itertools.count()


def next_uid() -> int:
    """Return a process-unique tensor id (thread-safe, monotonic).

    ``itertools.count.__next__`` is a single C-level step, so it is
    atomic under the GIL — no lock needed on this hot path.  The lock
    only guards the counter *swap* in :func:`reset_uid_counter`.
    """
    return next(_uid_counter)


def reset_uid_counter() -> None:
    """Reset uid allocation — test isolation only."""
    global _uid_counter
    with _uid_lock:
        _uid_counter = itertools.count()


@dataclass(frozen=True, slots=True)
class TensorSpec:
    """Metadata for one batched hadron tensor.

    Parameters
    ----------
    uid:
        Unique identity.  Reuse analysis is identity-based: the same
        ``uid`` appearing in two pairs is the same physical tensor.
    size:
        Dimension length ``N`` of each mode (the paper's *tensor size*,
        e.g. 128–768).
    batch:
        Leading batch dimension (number of time-slice / momentum
        combinations contracted together in one kernel launch).
    rank:
        2 for mesons (matrices), 3 for baryons.
    dtype_bytes:
        Bytes per element; complex64 by default.
    label:
        Optional human-readable name (hadron node id).
    """

    uid: int
    size: int
    batch: int = 32
    rank: int = 2
    dtype_bytes: int = COMPLEX64_BYTES
    label: str = ""
    #: Total element count including the batch dimension (derived,
    #: computed once — these sit on the scheduler's hottest paths).
    elements: int = field(init=False, repr=False, compare=False)
    #: Device memory footprint in bytes (derived, computed once).
    nbytes: int = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        if self.size <= 0:
            raise ConfigurationError(f"tensor size must be > 0, got {self.size}")
        if self.batch <= 0:
            raise ConfigurationError(f"tensor batch must be > 0, got {self.batch}")
        if self.rank not in (2, 3):
            raise ConfigurationError(f"tensor rank must be 2 (meson) or 3 (baryon), got {self.rank}")
        if self.dtype_bytes <= 0:
            raise ConfigurationError(f"dtype_bytes must be > 0, got {self.dtype_bytes}")
        size = self.size
        dim = size * size if self.rank == 2 else size * size * size
        object.__setattr__(self, "elements", self.batch * dim)
        object.__setattr__(self, "nbytes", self.elements * self.dtype_bytes)

    @property
    def shape(self) -> tuple[int, ...]:
        """NumPy shape ``(batch, size, ..., size)``."""
        return (self.batch,) + (self.size,) * self.rank

    def derived(self, *, rank: int | None = None, label: str = "") -> "TensorSpec":
        """A fresh tensor spec with the same size/batch but a new uid.

        Used for contraction outputs.  ``self`` already passed
        validation, so the copy skips it.
        """
        return _spec_unchecked(
            next_uid(),
            self.size,
            self.batch,
            self.rank if rank is None else rank,
            self.dtype_bytes,
            label,
        )


def _spec_unchecked(
    uid: int, size: int, batch: int, rank: int, dtype_bytes: int, label: str
) -> TensorSpec:
    """Build a :class:`TensorSpec` bypassing ``__init__`` validation.

    Stream generation constructs tens of thousands of specs whose
    fields were already validated upstream (workload params, an
    existing spec); re-running the dataclass ``__init__`` +
    ``__post_init__`` checks roughly doubles construction cost.
    Callers MUST guarantee the arguments satisfy the class invariants.
    """
    self = TensorSpec.__new__(TensorSpec)
    _set = object.__setattr__
    _set(self, "uid", uid)
    _set(self, "size", size)
    _set(self, "batch", batch)
    _set(self, "rank", rank)
    _set(self, "dtype_bytes", dtype_bytes)
    _set(self, "label", label)
    dim = size * size if rank == 2 else size * size * size
    elements = batch * dim
    _set(self, "elements", elements)
    _set(self, "nbytes", elements * dtype_bytes)
    return self


@dataclass(frozen=True, slots=True)
class TensorPair:
    """One hadron contraction: two input tensors and one output.

    The pair is the paper's scheduling unit — both inputs and the output
    land on the same GPU (a contraction kernel runs on one device).
    """

    left: TensorSpec
    right: TensorSpec
    out: TensorSpec

    def __post_init__(self):
        if self.left.size != self.right.size:
            raise ConfigurationError(
                f"contraction requires equal tensor sizes, got {self.left.size} vs {self.right.size}"
            )
        if self.left.batch != self.right.batch:
            raise ConfigurationError(
                f"contraction requires equal batch sizes, got {self.left.batch} vs {self.right.batch}"
            )

    @property
    def inputs(self) -> tuple[TensorSpec, TensorSpec]:
        return (self.left, self.right)

    @property
    def input_uids(self) -> tuple[int, int]:
        return (self.left.uid, self.right.uid)

    @classmethod
    def make(cls, left: TensorSpec, right: TensorSpec, label: str = "") -> "TensorPair":
        """Build a pair, deriving the output spec from the inputs."""
        global _output_spec
        if _output_spec is None:
            # Deferred to dodge the spec↔contraction import cycle, but
            # resolved exactly once (``make`` sits on the stream-
            # generation hot path).
            from repro.tensor.contraction import output_spec as _os

            _output_spec = _os
        # output_spec rejects size/batch mismatches before the pair is
        # assembled, so the dataclass re-validation can be skipped.
        out = _output_spec(left, right, label=label)
        pair = cls.__new__(cls)
        _set = object.__setattr__
        _set(pair, "left", left)
        _set(pair, "right", right)
        _set(pair, "out", out)
        return pair


#: Cache for :func:`repro.tensor.contraction.output_spec` (import cycle).
_output_spec = None


@dataclass
class VectorSpec:
    """One *vector*: a batch of independent tensor pairs (one stage slice).

    Mirrors the paper's input unit (Fig. 6): the scheduler receives one
    vector at a time, extracts its data characteristics, obtains reuse
    bounds, then assigns each pair to a GPU.

    ``meta`` carries generator-declared characteristics (repeated rate,
    distribution, ...) for experiment bookkeeping; schedulers must not
    read it — they only see measured state.
    """

    pairs: list[TensorPair]
    vector_id: int = 0
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.pairs:
            raise ConfigurationError("a vector must contain at least one tensor pair")

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    @property
    def num_tensors(self) -> int:
        """The paper's ``numTensor``: input-tensor slots (2 per pair)."""
        return 2 * len(self.pairs)

    @property
    def tensor_size(self) -> int:
        """Common dimension length of the vector's tensors."""
        return self.pairs[0].left.size

    def unique_input_uids(self) -> set[int]:
        """Distinct input-tensor identities referenced by this vector."""
        uids: set[int] = set()
        for p in self.pairs:
            uids.add(p.left.uid)
            uids.add(p.right.uid)
        return uids

    def input_bytes_unique(self) -> int:
        """Bytes of the distinct input tensors (working set, inputs only)."""
        seen: dict[int, int] = {}
        for p in self.pairs:
            seen[p.left.uid] = p.left.nbytes
            seen[p.right.uid] = p.right.nbytes
        return sum(seen.values())

    def output_bytes(self) -> int:
        """Bytes of all contraction outputs of this vector."""
        return sum(p.out.nbytes for p in self.pairs)
