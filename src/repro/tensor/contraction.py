"""Numeric hadron-contraction kernels (real math, NumPy-backed).

These kernels are what the simulated GPUs "run".  The meson kernel is a
batched complex matrix multiply; the baryon kernel contracts two
batched rank-3 tensors over their trailing two modes.  Both are pure
``matmul``/``einsum`` calls — fully vectorized, no Python loops over
the batch — per the HPC guide idioms.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.tensor.spec import TensorSpec, _spec_unchecked, next_uid


def output_rank(left_rank: int, right_rank: int) -> int:
    """Rank of the contraction output.

    * meson × meson (2, 2): one shared mode → rank 2,
    * baryon × baryon (3, 3): two shared modes → rank 2,
    * mixed (2, 3) / (3, 2): one shared mode → rank 3 (arises mid-way
      through multi-baryon graph contraction, where a rank-2
      intermediate meets a remaining baryon node).
    """
    if (left_rank, right_rank) in ((2, 2), (3, 3)):
        return 2
    if (left_rank, right_rank) in ((2, 3), (3, 2)):
        return 3
    raise ConfigurationError(f"cannot contract rank {left_rank} with rank {right_rank}")


def output_spec(left: TensorSpec, right: TensorSpec, label: str = "") -> TensorSpec:
    """Derive the output tensor spec for contracting ``left`` × ``right``."""
    if left.size != right.size or left.batch != right.batch:
        raise ConfigurationError("contraction operands must share size and batch")
    # Operand fields already passed validation, so the unchecked spec
    # builder is safe (hot: one output per generated pair).
    return _spec_unchecked(
        next_uid(),
        left.size,
        left.batch,
        output_rank(left.rank, right.rank),
        left.dtype_bytes,
        label or f"({left.label}*{right.label})",
    )


def meson_contract(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Batched meson contraction: ``(B, N, N) @ (B, N, N) -> (B, N, N)``."""
    if a.ndim != 3 or b.ndim != 3:
        raise ConfigurationError(f"meson contraction expects rank-3 arrays (batch, N, N), got {a.ndim=} {b.ndim=}")
    if a.shape != b.shape:
        raise ConfigurationError(f"shape mismatch {a.shape} vs {b.shape}")
    return np.matmul(a, b)


def baryon_contract(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Batched baryon contraction over two shared modes.

    ``(B, N, N, N) x (B, N, N, N) -> (B, N, N)`` via
    ``einsum('bxyz,bwyz->bxw')`` — the y/z quark-index pair is summed,
    leaving one free mode per operand.
    """
    if a.ndim != 4 or b.ndim != 4:
        raise ConfigurationError(f"baryon contraction expects rank-4 arrays (batch, N, N, N), got {a.ndim=} {b.ndim=}")
    if a.shape != b.shape:
        raise ConfigurationError(f"shape mismatch {a.shape} vs {b.shape}")
    return np.einsum("bxyz,bwyz->bxw", a, b, optimize=True)


def mixed_contract(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Rank-2 × rank-3 contraction over one shared mode.

    ``(B, N, N) x (B, N, N, N) -> (B, N, N, N)`` via
    ``einsum('bxy,byzw->bxzw')`` (and the mirrored form for the
    rank-3 × rank-2 order).
    """
    if a.ndim == 3 and b.ndim == 4:
        return np.einsum("bxy,byzw->bxzw", a, b, optimize=True)
    if a.ndim == 4 and b.ndim == 3:
        return np.einsum("bxyz,bzw->bxyw", a, b, optimize=True)
    raise ConfigurationError(f"mixed contraction expects ranks (2,3) or (3,2), got ndims {a.ndim=} {b.ndim=}")


def contract_pair(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dispatch on operand ranks: meson, baryon, or mixed."""
    if a.ndim == 3 and b.ndim == 3:
        return meson_contract(a, b)
    if a.ndim == 4 and b.ndim == 4:
        return baryon_contract(a, b)
    if {a.ndim, b.ndim} == {3, 4}:
        return mixed_contract(a, b)
    raise ConfigurationError(f"unsupported operand dimensionality {a.ndim}/{b.ndim}")
