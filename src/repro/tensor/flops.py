"""FLOP and byte accounting for hadron contractions.

The paper reports throughput in GFLOPS; the simulator computes it as
``total_flops / simulated_makespan``.  Counting conventions:

* A complex multiply-add is 8 real flops (4 mul + 4 add).
* Meson contraction = batched matmul of two ``(N, N)`` matrices:
  ``batch * 8 * N**3`` real flops.
* Baryon contraction = batched rank-3 × rank-3 contraction over two
  shared modes (``bxyz,bwyz->bxw``): ``batch * 8 * N**4`` real flops.
* Mixed rank-2 × rank-3 = one shared mode, rank-3 output
  (``bxy,byzw->bxzw``): ``batch * 8 * N**4`` real flops.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.tensor.spec import TensorPair, TensorSpec, VectorSpec

#: Real flops per complex multiply-add.
COMPLEX_MAC_FLOPS = 8


def contraction_flops(size: int, batch: int, rank: int, right_rank: int | None = None) -> int:
    """Real flops of one batched hadron contraction.

    ``rank`` (and optionally ``right_rank``) select the kernel: meson
    (2, 2) costs ``8·B·N³``; baryon (3, 3) and mixed (2, 3)/(3, 2)
    cost ``8·B·N⁴``.
    """
    rr = rank if right_rank is None else right_rank
    if (rank, rr) == (2, 2):
        return batch * COMPLEX_MAC_FLOPS * size**3
    if (rank, rr) in ((3, 3), (2, 3), (3, 2)):
        return batch * COMPLEX_MAC_FLOPS * size**4
    raise ConfigurationError(f"unsupported rank combination ({rank}, {rr})")


def pair_flops(pair: TensorPair) -> int:
    """Real flops to execute ``pair``'s contraction kernel."""
    t = pair.left
    return contraction_flops(t.size, t.batch, t.rank, pair.right.rank)


def pair_bytes(pair: TensorPair) -> int:
    """Bytes touched by ``pair``: both inputs plus the output."""
    return pair.left.nbytes + pair.right.nbytes + pair.out.nbytes


def vector_flops(vector: VectorSpec) -> int:
    """Total real flops of every contraction in ``vector``."""
    return sum(pair_flops(p) for p in vector.pairs)


def tensor_bytes(spec: TensorSpec) -> int:
    """Alias of :attr:`TensorSpec.nbytes` for symmetry with flop helpers."""
    return spec.nbytes
