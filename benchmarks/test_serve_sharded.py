"""Bench: sharded control plane vs the single serving loop.

A saturating two-tenant workload on a two-node (4+4 GPU) cluster is
served twice: once through the single global control loop
(:class:`MultiTenantServer` — one scheduling round in flight for the
whole cluster) and once through the two-level sharded plane
(:class:`ShardedServer` — a global router over per-node schedulers,
each with its own admission queue and in-flight window).  With the
control path the bottleneck, sharding must sustain a materially higher
sustained ticket rate at an equal-or-better p99.  A second sharded run
loses a whole node mid-run: exactly that shard dies, its queued and
in-flight tickets re-route through the global tier, and the run
degrades gracefully (every offered ticket still completes or is
accounted as dropped).

Writes ``BENCH_serve.json`` — wall-clock tickets/sec and events/sec,
simulated p50/p99 and throughput, peak RSS — which CI uploads as an
artifact.
"""

import json
import resource
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.core.config import MiccoConfig
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.gpusim import CostModel, Topology
from repro.serve import (
    MultiTenantServer,
    PoissonArrivals,
    ServeConfig,
    ShardedServer,
    SloTargets,
    TenantSpec,
)
from repro.workloads import WorkloadParams

MIB = 1024**2
SEED = 11
N_PER_TENANT = 24
SATURATING_RATE = 20_000.0
OUT_PATH = Path("BENCH_serve.json")


def tenants():
    stream = WorkloadParams(
        num_vectors=N_PER_TENANT, vector_size=8, tensor_size=64, batch=2
    )
    return (
        TenantSpec(
            "heavy", PoissonArrivals(SATURATING_RATE), stream,
            weight=3.0, slo=SloTargets(p99_s=0.5),
        ),
        TenantSpec("light", PoissonArrivals(SATURATING_RATE), stream, weight=1.0),
    )


def cluster_config():
    topo = Topology(num_devices=8, devices_per_node=4)
    return MiccoConfig(
        num_devices=8, memory_bytes=64 * MIB, cost_model=CostModel(topology=topo)
    )


def serve_config(**overrides):
    return ServeConfig(
        queue_capacity=128, tenants=tenants(), schedule_latency_per_pair_s=1e-4
    ).with_(**overrides)


def peak_rss_mib() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def timed(server, **run_kwargs):
    """Run one server, returning (result, wall seconds)."""
    t0 = time.perf_counter()
    result = server.run(seed=SEED, **run_kwargs)
    wall = time.perf_counter() - t0
    server.cluster.check_invariants()
    return result, wall


def section(result, wall_s: float) -> dict:
    s = result.summary()
    return {
        "offered": s["offered"],
        "completed": s["completed"],
        "dropped": s["dropped"],
        "throughput_vps_sim": s["throughput_vps"],
        "p50_ms_sim": s["p50_s"] * 1e3,
        "p99_ms_sim": s["p99_s"] * 1e3,
        "wall_s": wall_s,
        "tickets_per_s_wall": s["offered"] / wall_s if wall_s > 0 else 0.0,
        "events_per_s_wall": (
            s["events_processed"] / wall_s if wall_s > 0 else 0.0
        ),
        "events_processed": s["events_processed"],
        "peak_rss_mib": peak_rss_mib(),
    }


def sweep():
    out = {}
    out["single"] = timed(
        MultiTenantServer(config=cluster_config(), serve=serve_config())
    )
    out["sharded"] = timed(
        ShardedServer(config=cluster_config(), serve=serve_config(sharded=True))
    )
    out["sharded_replay"] = timed(
        ShardedServer(config=cluster_config(), serve=serve_config(sharded=True))
    )
    # Mid-run node loss: node 1 (devices 4-7) dies while the queue is hot.
    plan = FaultPlan((FaultEvent(FaultKind.NODE_LOST, 1.5e-3, 5),))
    out["sharded_node_loss"] = timed(
        ShardedServer(config=cluster_config(), serve=serve_config(sharded=True)),
        faults=plan,
    )
    return out


def test_sharded_beats_single_loop_and_degrades_gracefully(benchmark):
    results = run_once(benchmark, sweep)
    single, single_wall = results["single"]
    sharded, sharded_wall = results["sharded"]
    replay, _ = results["sharded_replay"]
    lossy, lossy_wall = results["sharded_node_loss"]

    ss, hs, ls = single.summary(), sharded.summary(), lossy.summary()
    print()
    print(f"single loop : {ss['throughput_vps']:8.0f} vec/s sim   "
          f"p99 {ss['p99_s'] * 1e3:7.3f} ms   {single_wall * 1e3:6.1f} ms wall")
    print(f"sharded     : {hs['throughput_vps']:8.0f} vec/s sim   "
          f"p99 {hs['p99_s'] * 1e3:7.3f} ms   {sharded_wall * 1e3:6.1f} ms wall   "
          f"{hs['sharding']['cross_node_fetches']} cross-node fetches")
    print(f"node loss   : {ls['completed']}/{ls['offered']} served, "
          f"{ls['sharding']['rerouted']} rerouted, "
          f"{sum(1 for x in ls['sharding']['shards'] if x['dead'])} shard dead")

    # The tentpole claim: sharding the control plane sustains a
    # materially higher ticket rate at equal-or-better p99.
    assert hs["throughput_vps"] > 1.2 * ss["throughput_vps"]
    assert hs["p99_s"] <= 1.05 * ss["p99_s"]
    for s in (ss, hs):
        assert s["completed"] == s["offered"] == 2 * N_PER_TENANT

    # Same seed → identical sharded runs, digest syncs and all.
    assert replay.summary() == hs

    # Node death kills exactly one shard; the global tier re-homes its
    # work and the run stays conservative (no ticket vanishes).
    dead = [x for x in ls["sharding"]["shards"] if x["dead"]]
    assert [x["node"] for x in dead] == [1]
    assert ls["sharding"]["rerouted"] > 0
    assert ls["completed"] + ls["dropped"] == ls["offered"]
    assert ls["faults"]["injected"]["node_lost"] == 1

    payload = {
        "workload": {
            "tenants": 2,
            "vectors": 2 * N_PER_TENANT,
            "arrival_rate_vps": SATURATING_RATE,
            "devices": 8,
            "devices_per_node": 4,
            "seed": SEED,
        },
        "single": section(single, single_wall),
        "sharded": section(sharded, sharded_wall),
        "sharded_node_loss": {
            **section(lossy, lossy_wall),
            "rerouted": ls["sharding"]["rerouted"],
            "dead_shards": [x["node"] for x in dead],
        },
        "speedup": {
            "throughput_sim": hs["throughput_vps"] / ss["throughput_vps"],
            "p99_ratio": hs["p99_s"] / ss["p99_s"],
        },
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"benchmark payload written to {OUT_PATH}")
