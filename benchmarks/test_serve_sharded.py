"""Bench: sharded control plane vs the single serving loop.

A saturating two-tenant workload on a two-node (4+4 GPU) cluster is
served twice: once through the single global control loop
(:class:`MultiTenantServer` — one scheduling round in flight for the
whole cluster) and once through the two-level sharded plane
(:class:`ShardedServer` — a global router over per-node schedulers,
each with its own admission queue and in-flight window).  With the
control path the bottleneck, sharding must sustain a materially higher
sustained ticket rate at an equal-or-better p99.  A second sharded run
loses a whole node mid-run: exactly that shard dies, its queued and
in-flight tickets re-route through the global tier, and the run
degrades gracefully (every offered ticket still completes or is
accounted as dropped).

A second, gray-failure sweep runs a three-node cluster through a
straggler + node-flap + heartbeat-silence plan three times: once with
health checking off, once with the heartbeat/quarantine lifecycle on,
and once with hedged dispatch layered on top.  None of these faults is
announced to the router — digests just go stale — so the unprotected
run parks tickets on the flapping node while the health-enabled runs
infer the failure, quarantine the shard, and drain around it.  Health
on must show a strictly lower p99 and strictly fewer SLO violations;
hedging must launch at least one clone and never double-count a
hedged ticket.

Writes ``BENCH_serve.json`` — wall-clock tickets/sec and events/sec,
simulated p50/p99 and throughput, peak RSS, plus the gray-failure
hedging-on vs hedging-off comparison — which CI uploads as an
artifact.
"""

import json
import resource
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.core.config import MiccoConfig
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.gpusim import CostModel, Topology
from repro.serve import (
    HealthConfig,
    MultiTenantServer,
    PoissonArrivals,
    ServeConfig,
    ShardedServer,
    SloTargets,
    TenantSpec,
)
from repro.workloads import WorkloadParams

MIB = 1024**2
SEED = 11
N_PER_TENANT = 24
SATURATING_RATE = 20_000.0
# The gray sweep arrives slowly enough to span the fault windows: at
# 4k vec/s the 48 tickets land over ~12 ms, so routing decisions are
# still being made while the flapping node looks attractive on stale
# digests.
GRAY_RATE = 4_000.0
GRAY_SLO_S = 8e-3
OUT_PATH = Path("BENCH_serve.json")


def tenants():
    stream = WorkloadParams(
        num_vectors=N_PER_TENANT, vector_size=8, tensor_size=64, batch=2
    )
    return (
        TenantSpec(
            "heavy", PoissonArrivals(SATURATING_RATE), stream,
            weight=3.0, slo=SloTargets(p99_s=0.5),
        ),
        TenantSpec("light", PoissonArrivals(SATURATING_RATE), stream, weight=1.0),
    )


def cluster_config():
    topo = Topology(num_devices=8, devices_per_node=4)
    return MiccoConfig(
        num_devices=8, memory_bytes=64 * MIB, cost_model=CostModel(topology=topo)
    )


def serve_config(**overrides):
    return ServeConfig(
        queue_capacity=128, tenants=tenants(), schedule_latency_per_pair_s=1e-4
    ).with_(**overrides)


def gray_cluster_config():
    """Three nodes, so quarantining one still leaves two drain targets."""
    topo = Topology(num_devices=12, devices_per_node=4)
    return MiccoConfig(
        num_devices=12, memory_bytes=64 * MIB, cost_model=CostModel(topology=topo)
    )


def gray_tenants():
    stream = WorkloadParams(
        num_vectors=N_PER_TENANT, vector_size=8, tensor_size=64, batch=2
    )
    return (
        TenantSpec(
            "heavy", PoissonArrivals(GRAY_RATE), stream,
            weight=3.0, slo=SloTargets(p99_s=GRAY_SLO_S),
        ),
        TenantSpec("light", PoissonArrivals(GRAY_RATE), stream, weight=1.0),
    )


def gray_serve_config(health):
    return ServeConfig(
        queue_capacity=128, tenants=gray_tenants(),
        schedule_latency_per_pair_s=1e-4, sharded=True, health=health,
    )


def gray_health_config():
    # quarantine_threshold=8 leaves the flapped shard in SUSPECT for
    # ~4 ms before quarantine: long enough for hedged dispatch to
    # rescue tickets already parked there, short enough that the drain
    # still beats waiting out the flap.
    return HealthConfig(
        heartbeat_interval_s=5e-4, quarantine_threshold=8.0,
        hedge_deadline_s=1e-3,
    )


def gray_plan():
    """Gray faults aimed at node 1 (devices 4-7); nodes 0 and 2 stay clean.

    None of these is announced to the router: the straggler slows
    compute silently, the flap kills and restores devices without a
    fault-domain broadcast, and the heartbeat loss silences a healthy
    node.  Only heartbeat inference can tell the difference.
    """
    return FaultPlan((
        FaultEvent(
            FaultKind.STRAGGLER, 1e-3, 4, duration_s=20e-3, slow_factor=6.0
        ),
        FaultEvent(
            FaultKind.NODE_FLAP, 2e-3, 5, duration_s=4e-3,
            count=3, period_s=5e-3,
        ),
        FaultEvent(FaultKind.HEARTBEAT_LOSS, 6.5e-3, 6, duration_s=4e-3),
    ))


def slo_violations(result) -> int:
    """Completions over the heavy-tenant SLO plus every shed ticket."""
    late = sum(1 for r in result.report.completed if r.latency_s > GRAY_SLO_S)
    return late + len(result.report.dropped)


def peak_rss_mib() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def timed(server, **run_kwargs):
    """Run one server, returning (result, wall seconds)."""
    t0 = time.perf_counter()
    result = server.run(seed=SEED, **run_kwargs)
    wall = time.perf_counter() - t0
    server.cluster.check_invariants()
    return result, wall


def section(result, wall_s: float) -> dict:
    s = result.summary()
    return {
        "offered": s["offered"],
        "completed": s["completed"],
        "dropped": s["dropped"],
        "throughput_vps_sim": s["throughput_vps"],
        "p50_ms_sim": s["p50_s"] * 1e3,
        "p99_ms_sim": s["p99_s"] * 1e3,
        "wall_s": wall_s,
        "tickets_per_s_wall": s["offered"] / wall_s if wall_s > 0 else 0.0,
        "events_per_s_wall": (
            s["events_processed"] / wall_s if wall_s > 0 else 0.0
        ),
        "events_processed": s["events_processed"],
        "peak_rss_mib": peak_rss_mib(),
    }


def sweep():
    out = {}
    out["single"] = timed(
        MultiTenantServer(config=cluster_config(), serve=serve_config())
    )
    out["sharded"] = timed(
        ShardedServer(config=cluster_config(), serve=serve_config(sharded=True))
    )
    out["sharded_replay"] = timed(
        ShardedServer(config=cluster_config(), serve=serve_config(sharded=True))
    )
    # Mid-run node loss: node 1 (devices 4-7) dies while the queue is hot.
    plan = FaultPlan((FaultEvent(FaultKind.NODE_LOST, 1.5e-3, 5),))
    out["sharded_node_loss"] = timed(
        ShardedServer(config=cluster_config(), serve=serve_config(sharded=True)),
        faults=plan,
    )
    # Gray-failure sweep: identical workload and fault plan, three
    # protection levels.
    for key, health in (
        ("gray_unprotected", None),
        ("gray_health", gray_health_config()),
        ("gray_health_hedged", gray_health_config().with_(hedging=True)),
    ):
        out[key] = timed(
            ShardedServer(
                config=gray_cluster_config(), serve=gray_serve_config(health)
            ),
            faults=gray_plan(),
        )
    return out


def test_sharded_beats_single_loop_and_degrades_gracefully(benchmark):
    results = run_once(benchmark, sweep)
    single, single_wall = results["single"]
    sharded, sharded_wall = results["sharded"]
    replay, _ = results["sharded_replay"]
    lossy, lossy_wall = results["sharded_node_loss"]

    ss, hs, ls = single.summary(), sharded.summary(), lossy.summary()
    print()
    print(f"single loop : {ss['throughput_vps']:8.0f} vec/s sim   "
          f"p99 {ss['p99_s'] * 1e3:7.3f} ms   {single_wall * 1e3:6.1f} ms wall")
    print(f"sharded     : {hs['throughput_vps']:8.0f} vec/s sim   "
          f"p99 {hs['p99_s'] * 1e3:7.3f} ms   {sharded_wall * 1e3:6.1f} ms wall   "
          f"{hs['sharding']['cross_node_fetches']} cross-node fetches")
    print(f"node loss   : {ls['completed']}/{ls['offered']} served, "
          f"{ls['sharding']['rerouted']} rerouted, "
          f"{sum(1 for x in ls['sharding']['shards'] if x['dead'])} shard dead")

    # The tentpole claim: sharding the control plane sustains a
    # materially higher ticket rate at equal-or-better p99.
    assert hs["throughput_vps"] > 1.2 * ss["throughput_vps"]
    assert hs["p99_s"] <= 1.05 * ss["p99_s"]
    for s in (ss, hs):
        assert s["completed"] == s["offered"] == 2 * N_PER_TENANT

    # Same seed → identical sharded runs, digest syncs and all.
    assert replay.summary() == hs

    # Node death kills exactly one shard; the global tier re-homes its
    # work and the run stays conservative (no ticket vanishes).
    dead = [x for x in ls["sharding"]["shards"] if x["dead"]]
    assert [x["node"] for x in dead] == [1]
    assert ls["sharding"]["rerouted"] > 0
    assert ls["completed"] + ls["dropped"] == ls["offered"]
    assert ls["faults"]["injected"]["node_lost"] == 1

    # --- Gray-failure sweep: health inference must pay for itself. ---
    gray_un, gray_un_wall = results["gray_unprotected"]
    gray_h, gray_h_wall = results["gray_health"]
    gray_hh, gray_hh_wall = results["gray_health_hedged"]
    gus, ghs, ghh = gray_un.summary(), gray_h.summary(), gray_hh.summary()
    viol_un, viol_h, viol_hh = (
        slo_violations(gray_un), slo_violations(gray_h),
        slo_violations(gray_hh),
    )
    hedges = gray_hh.health["hedges"]
    print(f"gray off    : p99 {gus['p99_s'] * 1e3:7.3f} ms   "
          f"{viol_un} SLO violations")
    print(f"gray health : p99 {ghs['p99_s'] * 1e3:7.3f} ms   "
          f"{viol_h} SLO violations   "
          f"{len(gray_h.health['quarantine_episodes'])} quarantine(s)")
    print(f"gray hedged : p99 {ghh['p99_s'] * 1e3:7.3f} ms   "
          f"{viol_hh} SLO violations   "
          f"{hedges['launched']} hedge(s), {hedges['won_by_clone']} "
          f"won by clone")

    # Conservation under gray chaos: every offered ticket completes or
    # is shed exactly once — quarantine and hedging never lose one.
    for s in (gus, ghs, ghh):
        assert s["offered"] == 2 * N_PER_TENANT
        assert s["completed"] + s["dropped"] == s["offered"]
        assert s["faults"]["injected"]["node_flap"] == 3
        assert s["faults"]["injected"]["heartbeat_loss"] == 1

    # The robustness claim: under seeded gray chaos, health-enabled
    # runs show strictly lower p99 and fewer SLO violations.
    assert ghs["p99_s"] < gus["p99_s"]
    assert viol_h < viol_un
    assert gray_h.health is not None
    assert len(gray_h.health["quarantine_episodes"]) >= 1

    # Hedging rides on top: clones launch, the race improves (or at
    # worst matches) plain health, and losers are cancelled — never
    # double-counted.
    assert hedges["launched"] >= 1
    assert hedges["cancelled"] == (
        hedges["won_by_primary"] + hedges["won_by_clone"]
    )
    assert ghh["p99_s"] <= ghs["p99_s"]
    assert viol_hh <= viol_h

    payload = {
        "workload": {
            "tenants": 2,
            "vectors": 2 * N_PER_TENANT,
            "arrival_rate_vps": SATURATING_RATE,
            "devices": 8,
            "devices_per_node": 4,
            "seed": SEED,
        },
        "single": section(single, single_wall),
        "sharded": section(sharded, sharded_wall),
        "sharded_node_loss": {
            **section(lossy, lossy_wall),
            "rerouted": ls["sharding"]["rerouted"],
            "dead_shards": [x["node"] for x in dead],
        },
        "speedup": {
            "throughput_sim": hs["throughput_vps"] / ss["throughput_vps"],
            "p99_ratio": hs["p99_s"] / ss["p99_s"],
        },
        "gray_failure": {
            "workload": {
                "arrival_rate_vps": GRAY_RATE,
                "devices": 12,
                "devices_per_node": 4,
                "slo_s": GRAY_SLO_S,
            },
            "unprotected": {
                **section(gray_un, gray_un_wall),
                "slo_violations": viol_un,
            },
            "health": {
                **section(gray_h, gray_h_wall),
                "slo_violations": viol_h,
                "quarantines": len(gray_h.health["quarantine_episodes"]),
            },
            "health_hedged": {
                **section(gray_hh, gray_hh_wall),
                "slo_violations": viol_hh,
                "quarantines": len(gray_hh.health["quarantine_episodes"]),
                "hedges": hedges,
            },
            "hedging": {
                "off_p99_ms": ghs["p99_s"] * 1e3,
                "on_p99_ms": ghh["p99_s"] * 1e3,
            },
        },
    }
    # Merge-write: the throughput bench owns the ``throughput`` key of
    # the same file, so a partial benchmark run must not clobber it.
    merged = json.loads(OUT_PATH.read_text()) if OUT_PATH.exists() else {}
    merged.update(payload)
    OUT_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    print(f"benchmark payload written to {OUT_PATH}")
