"""Bench: Table VI — real correlation functions.

Runs the three Redstar-analog correlators end-to-end (Wick diagrams →
graph contraction → stage partitioning → scheduling) on eight 32 GB
devices and asserts: footprints match the published memory costs,
diagram counts land in the thousands, and MICCO-optimal achieves a
Table VI-class speedup over Groute on every function.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import tab6_redstar
from repro.redstar.datasets import GIB, REAL_WORLD_SPECS


def test_tab6_redstar(benchmark, predictor8):
    res = run_once(benchmark, tab6_redstar.run, seed=0, predictor=predictor8)
    print()
    print(res.table().to_text())

    assert [r["name"] for r in res.rows] == ["a1_rhopi", "f0d2", "f0d4"]
    for row in res.rows:
        _, paper_n, paper_mem, paper_speedup = REAL_WORLD_SPECS[row["name"]]
        assert row["tensor_size"] == paper_n
        assert row["memory_gib"] == pytest.approx(paper_mem / GIB, rel=0.05)
        assert row["num_graphs"] > 1000
        # Speedup in the published neighbourhood (shape, not exact).
        assert 1.1 < row["speedup"] < 2.3
    # Paper ordering: a1_rhopi > f0d2 > f0d4.
    sp = [r["speedup"] for r in res.rows]
    assert sp[0] > sp[2]
