"""Bench: failure domains — warm restore and fault-aware admission.

Two resilience mechanisms from the failure-domain layer, each measured
against its naive baseline on an identical seeded scenario:

1. **Warm restore vs cold restart.**  A device loss destroys one
   replica of the working set; a ``replace_lost`` autoscaler brings a
   spare online.  With ``warm_restore`` the spare replays the residency
   journal and pre-warms the hottest orphaned tensors while it is still
   idle, so post-loss traffic re-fetches them over fast d2d links
   instead of stalling on host re-loads.  Asserts strictly lower mean
   post-loss latency and a recorded ``warm_restore`` recovery latency.

2. **Fault-aware admission vs naive FIFO.**  A spaced burst of three
   device losses lands on a pool serving with recovery disabled, so any
   vector in flight at a loss is abandoned — pure wasted work.  The
   :class:`FaultAware` gate watches the live fault rate and sheds
   arrivals whose estimated completion probability is too low, before
   they consume device time.  Asserts strictly less wasted work (fewer
   fault-abandoned vectors) and a better completed-per-started ratio
   than the ungated baseline, at the cost of predicted-infeasible sheds
   during the hazard window.

Both scenarios are fully seeded: the comparisons are deterministic.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.config import MiccoConfig
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.micco import MiccoScheduler
from repro.serve import AutoscalerConfig, MiccoServer, ServeConfig
from repro.serve.queueing import FaultAware, Fifo
from repro.workloads import SyntheticWorkload, WorkloadParams

MIB = 1024**2
SEED = 13


# ------------------------------------------------------- warm restore
LOSS_T = 0.01  # device 0 dies here; a spare replaces it


def restore_workload():
    params = WorkloadParams(
        vector_size=16, tensor_size=256, repeated_rate=0.9, num_vectors=60, batch=8
    )
    return SyntheticWorkload(params, seed=3).vectors()


def run_restore(warm: bool):
    plan = FaultPlan((FaultEvent(FaultKind.DEVICE_LOST, LOSS_T, 0),))
    serve = ServeConfig(
        max_inflight=4,
        warm_restore=warm,
        prewarm_fraction=0.25,
        autoscaler=AutoscalerConfig(
            min_devices=3, max_devices=4, initial_devices=3,
            warmup_s=0.002, replace_lost=True,
        ),
    )
    server = MiccoServer(
        MiccoScheduler(ReuseBounds(0, 4, 0)),
        MiccoConfig(num_devices=4, memory_bytes=128 * MIB),
        serve,
    )
    vectors = restore_workload()
    return server.run(vectors, [i * 1e-3 for i in range(60)], seed=SEED, faults=plan)


def post_loss_latency(result):
    post = result.report.completed_after(LOSS_T)
    return float(np.mean([c.complete_s - c.arrival_s for c in post.completed]))


def restore_sweep():
    return {"cold": run_restore(False), "warm": run_restore(True)}


def test_warm_restore_beats_cold(benchmark):
    results = run_once(benchmark, restore_sweep)
    cold_ms = post_loss_latency(results["cold"]) * 1e3
    warm_ms = post_loss_latency(results["warm"]) * 1e3
    journal = results["warm"].journal

    print()
    print(f"cold restart  post-loss mean {cold_ms:7.3f} ms  prewarmed 0")
    print(
        f"warm restore  post-loss mean {warm_ms:7.3f} ms  "
        f"prewarmed {journal['prewarmed_tensors']}"
        f"  ({(1 - warm_ms / cold_ms) * 100:.0f}% faster)"
    )

    # The journal replay actually ran and pre-warmed orphaned tensors.
    assert journal["restores"] >= 1
    assert journal["prewarmed_tensors"] > 0
    assert results["warm"].faults["recovery_latency_s"]["warm_restore"]
    assert results["cold"].journal is None

    # Warm recovery is strictly faster than a cold restart after the
    # same loss: the replacement serves from a pre-warmed working set.
    assert warm_ms < cold_ms

    # Determinism: both arms see the identical offered stream.
    assert results["warm"].summary()["offered"] == results["cold"].summary()["offered"]


# --------------------------------------------------- admission gating
def gating_workload():
    params = WorkloadParams(
        vector_size=16, tensor_size=224, repeated_rate=0.8, num_vectors=60, batch=8
    )
    return SyntheticWorkload(params, seed=3).vectors()


LOSS_BURST = FaultPlan((
    FaultEvent(FaultKind.DEVICE_LOST, 10e-3, 0),
    FaultEvent(FaultKind.DEVICE_LOST, 20e-3, 1),
    FaultEvent(FaultKind.DEVICE_LOST, 30e-3, 2),
))


def run_gated(policy):
    serve = ServeConfig(max_inflight=4, recover_faults=False, queue_policy=policy)
    server = MiccoServer(
        MiccoScheduler(ReuseBounds(0, 4, 0)),
        MiccoConfig(num_devices=4, memory_bytes=128 * MIB),
        serve,
    )
    vectors = gating_workload()
    return server.run(
        vectors, [i * 1e-3 for i in range(60)], seed=SEED, faults=LOSS_BURST
    )


def gating_sweep():
    gate = FaultAware(
        Fifo(), tau_s=0.006, exposure_s_per_pair=1e-3, min_success_prob=0.5
    )
    return {"naive": run_gated(Fifo()), "gated": run_gated(gate)}


def wasted_and_efficiency(result):
    s = result.summary()
    abandoned = s["dropped_by_reason"].get("fault-abandoned", 0)
    started = s["completed"] + abandoned
    return abandoned, s["completed"] / started if started else 0.0


def test_fault_aware_admission_beats_naive_fifo(benchmark):
    results = run_once(benchmark, gating_sweep)
    n_ab, n_eff = wasted_and_efficiency(results["naive"])
    g_ab, g_eff = wasted_and_efficiency(results["gated"])
    shed = results["gated"].summary()["dropped_by_reason"]["predicted-infeasible"]

    print()
    print(f"naive fifo   wasted {n_ab:2d} vectors   efficiency {n_eff:.3f}   shed 0")
    print(f"fault-aware  wasted {g_ab:2d} vectors   efficiency {g_eff:.3f}   shed {shed}")

    # The gate actually fired, and its sheds are accounted in both the
    # drop reasons and the fault section.
    assert shed > 0
    assert results["gated"].faults["predicted_infeasible"] == shed
    assert results["naive"].faults["predicted_infeasible"] == 0

    # Strictly less wasted work: vectors the gate declines never burn
    # device time, while the naive baseline starts and then abandons
    # them when the next loss lands.
    assert g_ab < n_ab

    # And the work it does start completes more often.
    assert g_eff > n_eff
