"""Micro-benchmarks: per-component hot-path latency.

Not a paper artifact — these track the cost of the pieces the paper's
Table V overhead claim depends on: one scheduler decision, one
simulated engine event, one real contraction kernel, and one model
inference.
"""

import numpy as np
import pytest

from repro.core.config import MiccoConfig
from repro.gpusim.cluster import ClusterState
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import mi100_like
from repro.gpusim.engine import ExecutionEngine
from repro.gpusim.metrics import ExecutionMetrics
from repro.ml.forest import RandomForestRegressor
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.micco import MiccoScheduler
from repro.tensor.contraction import meson_contract
from repro.workloads.synth import SyntheticWorkload, WorkloadParams


def _cluster(n=8):
    return ClusterState(mi100_like(n))


def test_micco_decision_latency(benchmark):
    """One Alg. 1 + Alg. 2 decision on a warm 8-device cluster."""
    cluster = _cluster()
    engine = ExecutionEngine(cluster, CostModel())
    sched = MiccoScheduler(ReuseBounds(2, 2, 2))
    vectors = SyntheticWorkload(WorkloadParams(vector_size=64, num_vectors=3, batch=2), seed=0).vectors()
    m = ExecutionMetrics(num_devices=8)
    cluster.begin_vector(64)
    for v in vectors[:2]:
        for p in v.pairs:
            engine.execute_pair(p, sched.choose(p, cluster), m)
    probe = vectors[2].pairs[0]

    result = benchmark(sched.choose, probe, cluster)
    assert 0 <= result < 8


def test_engine_pair_event_latency(benchmark):
    """One simulated contraction event (fetch + alloc + kernel accounting)."""
    cluster = _cluster()
    engine = ExecutionEngine(cluster, CostModel())
    vec = SyntheticWorkload(WorkloadParams(vector_size=64, num_vectors=1, batch=2), seed=0).vectors()[0]
    m = ExecutionMetrics(num_devices=8)
    cluster.begin_vector(64)
    pairs = iter(vec.pairs * 10_000)

    def one_event():
        engine.execute_pair(next(pairs), 0, m)

    benchmark(one_event)


def test_meson_kernel_numpy(benchmark):
    """Real batched meson contraction at the paper's default size."""
    rng = np.random.default_rng(0)
    a = (rng.standard_normal((8, 384, 384)) + 1j * rng.standard_normal((8, 384, 384))).astype(np.complex64)
    b = a.copy()
    out = benchmark(meson_contract, a, b)
    assert out.shape == (8, 384, 384)


def test_forest_inference_latency(benchmark):
    """One reuse-bound inference (the paper's 'negligible' online step)."""
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 10, (200, 4))
    Y = np.stack([X[:, 0] % 3, X[:, 1] % 2, np.zeros(200)], axis=1)
    model = RandomForestRegressor(n_estimators=40, seed=0).fit(X, Y)
    probe = X[:1]
    benchmark(model.predict, probe)


def test_full_vector_schedule_and_execute(benchmark):
    """Throughput: schedule + simulate one 64-tensor vector end-to-end."""
    from repro.core.session import run_stream

    config = MiccoConfig(num_devices=8)
    vectors = SyntheticWorkload(
        WorkloadParams(vector_size=64, num_vectors=1, batch=2), seed=0
    ).vectors()

    def run():
        cluster = _cluster()
        engine = ExecutionEngine(cluster, config.cost_model)
        return run_stream(vectors, MiccoScheduler(), cluster, engine)

    result = benchmark(run)
    assert result.metrics.pairs_executed == 32
