"""Bench: chaos recovery — serving a fault plan on a shrinking pool.

A 4-device pool serves an identical request stream three ways: clean,
under a seeded fault plan with recovery on, and with recovery off.
Asserts the robustness claims: with recovery, every admitted vector
still completes despite a mid-run device loss (plus transient, transfer
and straggler faults); availability and per-kind recovery latencies are
reported; and same-seed chaos runs reproduce identical reports and
traces.  Without recovery, fault-affected vectors are shed instead.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.config import MiccoConfig
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.micco import MiccoScheduler
from repro.serve import MiccoServer, PoissonArrivals, ServeConfig
from repro.workloads import SyntheticWorkload, WorkloadParams

SEED = 13
RATE = 300.0
N_VECTORS = 30


def chaos_plan() -> FaultPlan:
    """One of everything, with the device loss landing mid-run."""
    horizon = N_VECTORS / RATE
    return FaultPlan((
        FaultEvent(FaultKind.TRANSIENT, 0.1 * horizon, 1, count=2),
        FaultEvent(FaultKind.TRANSFER, 0.2 * horizon, 2, count=2),
        FaultEvent(FaultKind.STRAGGLER, 0.3 * horizon, 3, duration_s=0.3 * horizon, slow_factor=4.0),
        FaultEvent(FaultKind.DEVICE_LOST, 0.5 * horizon, 0),
    ))


def run(vectors, plan, recover=True):
    server = MiccoServer(
        MiccoScheduler(ReuseBounds(0, 4, 0)),
        MiccoConfig(num_devices=4),
        ServeConfig(max_inflight=4, recover_faults=recover),
    )
    return server.run(vectors, PoissonArrivals(RATE), seed=SEED, faults=plan)


def sweep():
    params = WorkloadParams(
        vector_size=16, tensor_size=256, repeated_rate=0.8, num_vectors=N_VECTORS, batch=8
    )
    vectors = SyntheticWorkload(params, seed=3).vectors()
    plan = chaos_plan()
    return {
        "clean": run(vectors, None),
        "chaos": run(vectors, plan),
        "chaos_replay": run(vectors, plan),
        "no_recovery": run(vectors, plan, recover=False),
    }


def test_chaos_recovery(benchmark):
    results = run_once(benchmark, sweep)
    clean, chaos = results["clean"].summary(), results["chaos"].summary()
    f = results["chaos"].faults

    print()
    print(f"clean  p99 {clean['p99_s'] * 1e3:8.2f} ms  completed {clean['completed']}/{clean['offered']}")
    print(
        f"chaos  p99 {chaos['p99_s'] * 1e3:8.2f} ms  completed {chaos['completed']}/{chaos['offered']}"
        f"  availability {f['availability_pct']:.1f}%"
        f"  rescheduled {f['rescheduled_pairs']} pairs"
    )

    # With recovery on, losing a device mid-run sheds nothing: every
    # admitted vector completes on the surviving pool.
    assert chaos["completed"] == chaos["offered"]
    assert f["device_losses"] == 1

    # The report carries the health picture: sub-100% availability and
    # a recovery latency for every injected fault kind.
    assert 0.0 < f["availability_pct"] < 100.0
    assert f["recovery_latency_s"]["transient"]
    assert f["recovery_latency_s"]["transfer"]
    assert f["recovery_latency_s"]["device_lost"]
    assert f["degraded_device_s"] > 0  # straggler window was live

    # Chaos costs latency, not correctness: tails inflate but stay
    # finite and within an order of magnitude of the clean run.
    assert np.isfinite(chaos["p99_s"])
    assert chaos["p99_s"] < 50 * clean["p99_s"]

    # Same seed, same plan → identical report and identical trace.
    replay = results["chaos_replay"]
    assert replay.summary() == chaos
    assert replay.fault_events == results["chaos"].fault_events
    assert [e.__dict__ for e in replay.to_trace().events] == [
        e.__dict__ for e in results["chaos"].to_trace().events
    ]

    # Recovery is what saves those vectors: without it they are shed.
    no_rec = results["no_recovery"].summary()
    assert no_rec["dropped_by_reason"].get("fault-abandoned", 0) > 0
    assert no_rec["completed"] < no_rec["offered"]
