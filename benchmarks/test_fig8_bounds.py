"""Bench: Fig. 8 — impact of reuse bounds.

Regenerates the thirteen-triple sweep over the paper's three cases and
asserts the headline: the best triple differs across cases, so a fixed
setting cannot be optimal (the motivation for the regression model).
"""

from benchmarks.conftest import run_once
from repro.experiments import fig8_bounds


def test_fig8_bounds(benchmark):
    res = run_once(benchmark, fig8_bounds.run, num_vectors=8, batch=16, seed=7)
    print()
    print(res.table().to_text())

    assert len(res.cases) == 3
    for case in res.cases:
        assert len(case["sweep"]) == 13
        assert min(case["sweep"].values()) > 0
    # Bounds matter: in at least one case the spread across settings is
    # non-trivial (paper case 3 swings by double digits).
    spreads = [
        max(c["sweep"].values()) / min(c["sweep"].values()) for c in res.cases
    ]
    assert max(spreads) > 1.05
