"""Bench: batched scheduling rounds vs one-vector-at-a-time dispatch.

An overlap-heavy stream (85% repeated tensors) saturates a small pool.
Coalescing compatible queued vectors into merged scheduling rounds must
beat unbatched dispatch on *both* sustained throughput and p99 latency:
a round moves several vectors through the single scheduling slot
together (pipelining the backlog) and schedules their pairs as one
super-vector, so tensors shared across the members are placed once and
reused instead of re-fetched per vector.  Both runs see byte-identical
workloads and arrivals; everything is seeded and replayable.
"""

from benchmarks.conftest import run_once
from repro.core.config import MiccoConfig
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.micco import MiccoScheduler
from repro.serve import MiccoServer, PoissonArrivals, ServeConfig
from repro.workloads import SyntheticWorkload, WorkloadParams

MIB = 1024**2
SEED = 9
SATURATING_RATE = 5_000.0
BATCH_LIMIT = 4


def overlap_heavy_vectors():
    params = WorkloadParams(
        vector_size=12, tensor_size=192, repeated_rate=0.85,
        num_vectors=32, batch=4,
    )
    return SyntheticWorkload(params, seed=SEED).vectors()


def run_serve(max_batch_vectors):
    server = MiccoServer(
        MiccoScheduler(ReuseBounds(0, 4, 0)),
        MiccoConfig(num_devices=4, memory_bytes=256 * MIB),
        ServeConfig(max_batch_vectors=max_batch_vectors, queue_capacity=256),
    )
    return server.run(overlap_heavy_vectors(), PoissonArrivals(SATURATING_RATE), seed=SEED)


def test_batched_beats_unbatched_on_throughput_and_p99(benchmark):
    def both():
        return run_serve(1), run_serve(BATCH_LIMIT)

    unbatched, batched = run_once(benchmark, both)
    su, sb = unbatched.summary(), batched.summary()

    # Everything completes either way; batching changes *when*, not *if*.
    assert su["completed"] == sb["completed"] == 32
    assert sb["batching"]["batched_rounds"] > 0
    assert sb["batching"]["max_round_vectors"] > 1
    assert su["batching"]["batched_rounds"] == 0

    # The paper-level claim: coalesced rounds sustain higher throughput
    # and a lower tail on an overlap-heavy backlog.
    assert sb["throughput_vps"] > su["throughput_vps"]
    assert sb["p99_s"] < su["p99_s"]

    # Amortized dispatch cost per vector drops with occupancy.
    assert (
        sb["batching"]["amortized_schedule_s"]
        < su["batching"]["amortized_schedule_s"]
    )


def test_batched_run_is_seed_stable(benchmark):
    a = run_once(benchmark, run_serve, BATCH_LIMIT)
    b = run_serve(BATCH_LIMIT)
    assert a.summary() == b.summary()
    assert a.rounds == b.rounds
