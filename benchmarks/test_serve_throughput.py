"""Bench: vectorized simulator core vs the reference core.

The tentpole workload — two tenants (weights 3.0/1.0) offering 4 000
vectors each at a saturating Poisson rate onto an 8-GPU / 2-node
cluster with 64 MiB devices — is served through the unified
:func:`repro.serve.serve` API twice:

* once on the default **vectorized core** (numpy batch scoring via
  ``CostModel.score_batch`` + ``lex_argmin``, slot-indexed device
  horizons, columnar traces), for the absolute events-per-second
  figure, and
* once on the **reference core** (``repro.compat.reference_core``),
  in the *same process*, for a machine-drift-immune speedup ratio.

The golden-equivalence suite (``tests/test_golden_equivalence.py``)
already pins both cores to byte-identical reports; this bench only
measures how much faster the vectorized one is.  Wall-clock numbers
move with machine load, so the ratio — both runs sharing the same
interpreter, same cache state, same background noise — is the number
the perf gate trusts.

Merges a ``throughput`` section into ``BENCH_serve.json`` (the sharded
bench owns the rest of the file), which CI uploads as an artifact and
``tools/perf_gate.py`` diffs against the committed baseline.
"""

import json
import resource
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro import compat
from repro.core.config import MiccoConfig
from repro.gpusim import CostModel, Topology
from repro.serve import PoissonArrivals, ServeConfig, TenantSpec, make_server
from repro.workloads import WorkloadParams

MIB = 1024**2
SEED = 11
#: Per-tenant stream length; matches the PR 7 baseline measurement.
N_FULL = 4_000
SATURATING_RATE = 20_000.0
OUT_PATH = Path("BENCH_serve.json")

#: PR 7 baseline for the same full-scale workload on the development
#: machine (committed alongside the vectorized core): the reference
#: object-at-a-time loop served 18 001 events in 10.833 s wall.
PR7_BASELINE = {
    "wall_s": 10.833,
    "events_per_s_wall": 1_662.0,
    "events_processed": 18_001,
    "peak_rss_mib": 69.8,
}


def tenants(n_per_tenant):
    stream = WorkloadParams(
        num_vectors=n_per_tenant, vector_size=8, tensor_size=64, batch=2
    )
    return (
        TenantSpec("heavy", PoissonArrivals(SATURATING_RATE), stream, weight=3.0),
        TenantSpec("light", PoissonArrivals(SATURATING_RATE), stream, weight=1.0),
    )


def cluster_config():
    topo = Topology(num_devices=8, devices_per_node=4)
    return MiccoConfig(
        num_devices=8, memory_bytes=64 * MIB, cost_model=CostModel(topology=topo)
    )


def serve_config(n_per_tenant):
    return ServeConfig(
        queue_capacity=8192, tenants=tenants(n_per_tenant),
        schedule_latency_per_pair_s=1e-4, max_batch_vectors=4,
    )


def peak_rss_mib() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def timed(n_per_tenant):
    """One multi-tenant run via the serve() facade, timed."""
    server = make_server(
        serve_config(n_per_tenant), cluster=cluster_config()
    )
    t0 = time.perf_counter()
    result = server.run(seed=SEED)
    wall = time.perf_counter() - t0
    server.cluster.check_invariants()
    return result, wall


def sweep():
    out = {}
    # Warm-up: first touch of numpy kernels and workload generation
    # should not bill to either timed run.
    timed(64)
    out["fast"] = timed(N_FULL)
    with compat.reference_core():
        out["reference"] = timed(N_FULL)
    return out


def section(result, wall_s: float) -> dict:
    s = result.summary()
    return {
        "offered": s["offered"],
        "completed": s["completed"],
        "events_processed": s["events_processed"],
        "wall_s": wall_s,
        "tickets_per_s_wall": s["offered"] / wall_s if wall_s > 0 else 0.0,
        "events_per_s_wall": (
            s["events_processed"] / wall_s if wall_s > 0 else 0.0
        ),
        "peak_rss_mib": peak_rss_mib(),
    }


def test_vectorized_core_throughput(benchmark):
    results = run_once(benchmark, sweep)
    full, full_wall = results["fast"]
    ref, ref_wall = results["reference"]

    fs, rs = full.summary(), ref.summary()
    speedup = ref_wall / full_wall if full_wall > 0 else 0.0
    ev_per_s = fs["events_processed"] / full_wall
    print()
    print(f"fast (N={2 * N_FULL:5d}) : {full_wall:7.3f} s wall   "
          f"{ev_per_s:8.0f} ev/s   {fs['events_processed']} events")
    print(f"ref  (N={2 * N_FULL:5d}) : {ref_wall:7.3f} s wall   "
          f"in-process speedup {speedup:.2f}x")

    # Same workload, both cores: identical simulated outcome (the
    # golden suite pins byte-identity; this is the cheap smoke).
    assert json.dumps(fs, sort_keys=True) == json.dumps(rs, sort_keys=True)
    for s in (fs, rs):
        assert s["completed"] == s["offered"]
        assert s["dropped"] == 0
    assert fs["offered"] == 2 * N_FULL

    # The tentpole claim, drift-immune form: the vectorized core beats
    # the reference core by a wide margin in the same process.  The
    # committed figure is ~8x; 4x is the never-regress floor (a shared
    # single-core box can halve any one run).
    assert speedup > 4.0

    payload = json.loads(OUT_PATH.read_text()) if OUT_PATH.exists() else {}
    payload["throughput"] = {
        "workload": {
            "tenants": 2,
            "vectors": 2 * N_FULL,
            "arrival_rate_vps": SATURATING_RATE,
            "devices": 8,
            "devices_per_node": 4,
            "memory_mib": 64,
            "seed": SEED,
        },
        "fast": section(full, full_wall),
        "reference": section(ref, ref_wall),
        "speedup_vs_reference": speedup,
        "pr7_baseline": PR7_BASELINE,
        "speedup_vs_pr7_baseline_wall": (
            ev_per_s / PR7_BASELINE["events_per_s_wall"]
        ),
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"benchmark payload merged into {OUT_PATH}")
