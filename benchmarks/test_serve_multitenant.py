"""Bench: multi-tenant serving — weighted fairness and p99 autoscaling.

Two tenants with a 3:1 weight ratio saturate a small pool with
equal-rate, equal-size streams.  Weighted-fair admission must hold the
heavy tenant's share of early dispatches within 10% of its weight
ratio (0.75) while global FIFO — which ignores weights — does not.
Separately, a bursty tenant served on an autoscaled pool (min 1, max 4
devices, queue-depth + windowed-p99 signals) must see a better p99 than
on a fixed minimal pool, because the autoscaler absorbs the burst and
then retires the extra devices.  Everything is seeded: identical seeds
reproduce identical per-tenant reports and identical scaling-action
logs.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.config import MiccoConfig
from repro.serve import (
    AutoscalerConfig,
    BurstyArrivals,
    MultiTenantServer,
    PoissonArrivals,
    ServeConfig,
    TenantSpec,
)
from repro.workloads import WorkloadParams

SEED = 11
N_PER_TENANT = 24
SATURATING_RATE = 20_000.0
WEIGHT_RATIO = 3.0


def fairness_tenants():
    stream = WorkloadParams(num_vectors=N_PER_TENANT, vector_size=8, tensor_size=64, batch=2)
    return (
        TenantSpec("heavy", PoissonArrivals(SATURATING_RATE), stream, weight=WEIGHT_RATIO),
        TenantSpec("light", PoissonArrivals(SATURATING_RATE), stream, weight=1.0),
    )


def heavy_share(result):
    """Heavy tenant's fraction of the first half of dispatches."""
    order = sorted(result.report.completed, key=lambda r: (r.dispatch_s, r.vector_id))
    first_half = order[: N_PER_TENANT]
    return sum(1 for r in first_half if r.tenant == "heavy") / len(first_half)


def run_fairness(policy):
    cfg = ServeConfig(queue_capacity=128, queue_policy=policy, tenants=fairness_tenants())
    server = MultiTenantServer(config=MiccoConfig(num_devices=2), serve=cfg)
    return server.run(seed=SEED)


def bursty_tenants():
    burst = WorkloadParams(num_vectors=30, vector_size=8, tensor_size=64, batch=2)
    steady = WorkloadParams(num_vectors=10, vector_size=8, tensor_size=64, batch=2)
    return (
        TenantSpec(
            "bursty",
            BurstyArrivals(15_000.0, 100.0, mean_on_s=0.002, mean_off_s=0.01),
            burst,
            weight=2.0,
        ),
        TenantSpec("steady", PoissonArrivals(500.0), steady, weight=1.0),
    )


def run_autoscaled(autoscale: bool):
    scaler = AutoscalerConfig(
        min_devices=1,
        max_devices=4,
        p99_target_s=0.002,
        window_s=0.05,
        up_queue_depth=3,
        warmup_s=0.0005,
        cooldown_s=0.002,
    )
    cfg = ServeConfig(
        queue_capacity=128,
        tenants=bursty_tenants(),
        autoscaler=scaler if autoscale else None,
    )
    # The fixed baseline gets exactly the autoscaler's floor: one device.
    devices = 4 if autoscale else 1
    server = MultiTenantServer(config=MiccoConfig(num_devices=devices), serve=cfg)
    result = server.run(seed=SEED)
    server.cluster.check_invariants()
    return result


def sweep():
    return {
        "weighted": run_fairness("auto"),
        "weighted_replay": run_fairness("auto"),
        "fifo": run_fairness("fifo"),
        "autoscaled": run_autoscaled(True),
        "autoscaled_replay": run_autoscaled(True),
        "fixed_minimal": run_autoscaled(False),
    }


def test_multitenant_fairness_and_autoscaling(benchmark):
    results = run_once(benchmark, sweep)

    target = WEIGHT_RATIO / (WEIGHT_RATIO + 1.0)  # 0.75
    wf_share = heavy_share(results["weighted"])
    fifo_share = heavy_share(results["fifo"])
    scaled = results["autoscaled"]
    fixed = results["fixed_minimal"]
    p99_scaled = scaled.tenant_report("bursty").p99
    p99_fixed = fixed.tenant_report("bursty").p99

    print()
    print(f"heavy-tenant share of first {N_PER_TENANT} dispatches "
          f"(weights {WEIGHT_RATIO:g}:1, target {target:.2f}):")
    print(f"  weighted-fair {wf_share:.3f}   fifo {fifo_share:.3f}")
    print(f"bursty-tenant p99: autoscaled {p99_scaled * 1e3:.3f} ms "
          f"(ups {scaled.autoscale['scale_ups']}, downs {scaled.autoscale['scale_downs']})"
          f"   fixed 1-device pool {p99_fixed * 1e3:.3f} ms")

    # Weighted-fair admission realises the weight ratio under
    # saturation; global FIFO does not (it tracks arrival order).
    assert abs(wf_share - target) <= 0.10 * target
    assert abs(fifo_share - target) > 0.10 * target
    assert results["weighted"].queue["policy"] == "weighted"
    assert results["fifo"].queue["policy"] == "fifo"

    # Both tenants fully served in the fairness runs (capacity is ample).
    for key in ("weighted", "fifo"):
        s = results[key].summary()
        assert s["completed"] == s["offered"] == 2 * N_PER_TENANT

    # The autoscaler reacts to the burst and pays off in the tail.
    assert scaled.autoscale["scale_ups"] >= 1
    assert np.isfinite(p99_scaled) and np.isfinite(p99_fixed)
    assert p99_scaled < p99_fixed

    # Same seed → identical per-tenant sections and scaling actions.
    assert results["weighted_replay"].summary() == results["weighted"].summary()
    assert results["autoscaled_replay"].summary() == scaled.summary()
    assert results["autoscaled_replay"].autoscale["actions"] == scaled.autoscale["actions"]
