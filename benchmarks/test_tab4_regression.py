"""Bench: Table IV — regression-model R² comparison.

Builds the tuning set, fits Linear / Gradient Boosting / Random Forest,
and asserts the paper's ordering: the relationship is non-linear, so
linear regression trails both tree ensembles decisively.
"""

from benchmarks.conftest import run_once
from repro.experiments import tab4_regression


def test_tab4_regression(benchmark):
    # The paper's 300 samples matter: the evaluation grid has ~128
    # distinct configurations, and the 80/20 split measures per-config
    # interpolation — fewer samples leave too many test configs unseen.
    res = run_once(benchmark, tab4_regression.run, n_samples=300, n_estimators=100, quick=False)
    print()
    print(res.table().to_text())

    lr = res.scores["linear"]
    gbm = res.scores["gradient-boosting"]
    rf = res.scores["random-forest"]
    assert lr < gbm and lr < rf, "linear must trail the ensembles"
    assert rf > 0.5 and gbm > 0.4, "ensembles must capture real structure"
