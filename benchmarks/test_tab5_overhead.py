"""Bench: Table V — scheduling overhead.

Measures real wall-clock of MICCO's decisions (Alg. 1 + Alg. 2 and
regression inference) against simulated execution time on the paper's
setup, asserting the overhead is a small fraction (paper ≤ 5.4 %,
headline "extremely low scheduling overhead").
"""

from benchmarks.conftest import run_once
from repro.experiments import tab5_overhead


def test_tab5_overhead(benchmark, predictor8):
    res = run_once(
        benchmark,
        tab5_overhead.run,
        vector_size=64,
        num_vectors=10,
        seed=7,
        predictor=predictor8,
    )
    print()
    print(res.table().to_text())

    for row in res.rows:
        assert row["schedule_ms"] > 0
        assert row["overhead_fraction"] < 0.1, "scheduler must be a minor cost"
