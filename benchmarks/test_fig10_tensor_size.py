"""Bench: Fig. 10 — tensor-size sweep 128→768.

Asserts: GFLOPS strongly increases with tensor size (arithmetic
intensity), and MICCO stays ahead of Groute at every size (paper:
1.35–1.92×).
"""

from benchmarks.conftest import BENCH, run_once
from repro.experiments import fig10_tensor_size


def test_fig10_tensor_size(benchmark, predictor8):
    res = run_once(
        benchmark,
        fig10_tensor_size.run,
        tensor_sizes=(128, 256, 384, 768),
        predictor=predictor8,
        **BENCH,
    )
    print()
    print(res.table().to_text())

    for dist in ("uniform", "gaussian"):
        gflops = res.series(dist, "micco-optimal")
        assert gflops == sorted(gflops), "GFLOPS should rise with tensor size"
        speedups = res.series(dist, "speedup")
        assert min(speedups) > 1.0, "MICCO ahead at every size"
