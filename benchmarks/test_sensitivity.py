"""Bench: cost-model sensitivity (reproduction-credibility check).

Asserts that the MICCO-over-Groute ordering survives 2× perturbations
(both directions) of every calibrated cost constant — the simulator-
substitution argument of DESIGN.md §2, tested.
"""

from benchmarks.conftest import run_once
from repro.experiments import sensitivity


def test_sensitivity(benchmark):
    res = run_once(benchmark, sensitivity.run, quick=True)
    print()
    print(res.table().to_text())

    speedups = res.speedups()
    assert min(speedups) > 1.0, "ordering must never flip under perturbation"
    assert max(speedups) / min(speedups) < 1.5, "speedup should be stable, not knife-edge"
