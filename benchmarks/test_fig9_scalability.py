"""Bench: Fig. 9 — scalability 1→8 GPUs.

Asserts the paper's shape: GFLOPS grows sub-linearly in device count
while MICCO's advantage over Groute grows with it.
"""

from benchmarks.conftest import BENCH, run_once
from repro.experiments import fig9_scalability


def test_fig9_scalability(benchmark, predictor8):
    res = run_once(
        benchmark,
        fig9_scalability.run,
        device_counts=(1, 2, 4, 8),
        predictor=predictor8,
        **BENCH,
    )
    print()
    print(res.table().to_text())

    for dist in ("uniform", "gaussian"):
        gflops = res.series(dist, "micco-optimal")
        speedups = res.series(dist, "speedup")
        # Throughput increases with devices...
        assert gflops == sorted(gflops)
        # ...but sub-linearly (8 GPUs deliver < 8x of 1 GPU).
        assert gflops[-1] < 8 * gflops[0]
        # Single-GPU speedup is trivially 1; multi-GPU speedup exceeds it.
        assert abs(speedups[0] - 1.0) < 1e-9
        assert max(speedups[1:]) > 1.05
