"""Bench: Fig. 11 — memory oversubscription 125→200 %.

Asserts the paper's shape: throughput decreases as oversubscription
grows (evictions hurt), eviction counts rise with the rate, and MICCO
retains a geomean advantage.
"""

import numpy as np

from benchmarks.conftest import BENCH, run_once
from repro.experiments import fig11_oversubscription


def test_fig11_oversubscription(benchmark, predictor8):
    res = run_once(
        benchmark,
        fig11_oversubscription.run,
        rates=(1.25, 1.5, 1.75, 2.0),
        predictor=predictor8,
        **BENCH,
    )
    print()
    print(res.table().to_text())

    for dist in ("uniform", "gaussian"):
        gflops = res.series(dist, "micco-optimal")
        evs = [r["evictions_micco"] for r in res.rows if r["distribution"] == dist]
        # Deeper oversubscription -> no faster, more evictions.
        assert gflops[-1] < gflops[0]
        assert evs[-1] > evs[0]
        assert res.geomean_speedup(dist) > 1.0
