"""Bench: result-integrity detection rate vs audit overhead.

Two measurements merge into the ``integrity`` section of
``BENCH_serve.json``:

* **Detection sweep** — a seeded corruption chaos run (two silently
  corrupting devices plus two tensor bitflips on a 4-GPU cluster)
  served under ``spot`` auditing at increasing ``audit_fraction``,
  plus one ``suspect-full`` run.  Every point reports the root-level
  detection rate and the simulated audit overhead, pinning the knob's
  trade-off curve: more auditing buys more detection and costs more
  recompute time.

* **Clean-workload overhead** — the PR 8 throughput workload (two
  tenants, 8 GPUs, saturating Poisson) served integrity-off and then
  under spot auditing.  The *simulated* ``audit_overhead_frac`` is a
  pure function of the seed and therefore the number
  ``tools/perf_gate.py`` bounds hard (< 10 %); the wall events/sec
  ratio is recorded alongside for context but moves with machine
  noise, so it only gets a loose floor here.

Conservation (detected = repaired + flagged) is asserted on every run:
a detected taint never silently vanishes.
"""

import json
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.core.config import MiccoConfig
from repro.faults import FaultPlan
from repro.gpusim import CostModel, Topology
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.micco import MiccoScheduler
from repro.serve import (
    IntegrityConfig,
    PoissonArrivals,
    ServeConfig,
    TenantSpec,
    make_server,
    serve,
)
from repro.workloads import SyntheticWorkload, WorkloadParams

MIB = 1024**2
SEED = 11
OUT_PATH = Path("BENCH_serve.json")

#: Chaos-sweep scale: 400 vectors over a ~0.1 s horizon keeps the
#: corruption windows busy without dominating the bench wall time.
N_CHAOS = 400
CHAOS_RATE = 4_000.0
SWEEP_FRACTIONS = (0.1, 0.25, 0.5)

#: Clean-workload scale (smaller than the throughput bench's 8 000 —
#: this one runs the workload twice and only needs the ratio).
N_CLEAN = 1_000
#: Spot audit fraction for the overhead measurement: recomputing ~8 %
#: of pairs keeps the simulated overhead under the 10 % gate bound.
CLEAN_AUDIT_FRACTION = 0.08


def chaos_run(integrity: IntegrityConfig):
    params = WorkloadParams(
        vector_size=8, tensor_size=64, repeated_rate=0.6,
        num_vectors=N_CHAOS, batch=2,
    )
    vectors = SyntheticWorkload(params, seed=3).vectors()
    plan = FaultPlan.generate(
        SEED, num_devices=4, horizon_s=N_CHAOS / CHAOS_RATE,
        n_transient=1, n_data_corruption=2, n_tensor_bitflip=2,
        corruption_prob=0.6,
    )
    cfg = ServeConfig(queue_capacity=64, faults=plan, integrity=integrity)
    cluster = MiccoConfig(num_devices=4, memory_bytes=64 * MIB)
    return serve(
        cfg, cluster=cluster, scheduler=MiccoScheduler(ReuseBounds(0, 4, 0)),
        vectors=vectors, arrivals=PoissonArrivals(CHAOS_RATE), seed=SEED,
    )


def clean_run(integrity: IntegrityConfig | None):
    stream = WorkloadParams(
        num_vectors=N_CLEAN, vector_size=8, tensor_size=64, batch=2
    )
    tenants = (
        TenantSpec("heavy", PoissonArrivals(20_000.0), stream, weight=3.0),
        TenantSpec("light", PoissonArrivals(20_000.0), stream, weight=1.0),
    )
    topo = Topology(num_devices=8, devices_per_node=4)
    cluster = MiccoConfig(
        num_devices=8, memory_bytes=64 * MIB, cost_model=CostModel(topology=topo)
    )
    cfg = ServeConfig(
        queue_capacity=8192, tenants=tenants,
        schedule_latency_per_pair_s=1e-4, max_batch_vectors=4,
        integrity=integrity,
    )
    server = make_server(cfg, cluster=cluster)
    t0 = time.perf_counter()
    result = server.run(seed=SEED)
    wall = time.perf_counter() - t0
    return result, wall


def sweep_point(integrity: IntegrityConfig) -> dict:
    it = chaos_run(integrity).integrity
    assert it["detected"] == it["repaired"] + it["flagged"]  # conservation
    return {
        "mode": integrity.mode,
        "audit_fraction": integrity.audit_fraction,
        "detection_rate": it["detection_rate"],
        "audit_overhead_frac": it["audit_overhead_frac"],
        "audited_pairs": it["audited_pairs"],
        "injected": it["injected"],
        "detected": it["detected"],
        "repaired": it["repaired"],
        "flagged": it["flagged"],
        "escaped": it["escaped"],
        "quarantined": it["blame"]["quarantined"],
    }


def sweep():
    out = {"sweep": [], "suspect_full": None}
    for fraction in SWEEP_FRACTIONS:
        out["sweep"].append(
            sweep_point(IntegrityConfig(mode="spot", audit_fraction=fraction))
        )
    out["suspect_full"] = sweep_point(
        IntegrityConfig(mode="suspect-full", audit_fraction=SWEEP_FRACTIONS[1])
    )
    # Warm-up so first-touch costs bill to neither timed run.
    clean_run(None)
    off_result, off_wall = clean_run(None)
    spot_result, spot_wall = clean_run(
        IntegrityConfig(mode="spot", audit_fraction=CLEAN_AUDIT_FRACTION)
    )
    out["clean"] = (off_result, off_wall, spot_result, spot_wall)
    return out


def rate_section(result, wall_s: float) -> dict:
    s = result.summary()
    return {
        "completed": s["completed"],
        "events_processed": s["events_processed"],
        "wall_s": wall_s,
        "events_per_s_wall": (
            s["events_processed"] / wall_s if wall_s > 0 else 0.0
        ),
    }


def test_integrity_detection_vs_overhead(benchmark):
    results = run_once(benchmark, sweep)
    points = results["sweep"]
    suspect_full = results["suspect_full"]
    off_result, off_wall, spot_result, spot_wall = results["clean"]

    print()
    for p in points + [suspect_full]:
        print(f"{p['mode']:>12s} frac={p['audit_fraction']:.2f} : "
              f"detection {p['detection_rate']:5.0%}   "
              f"overhead {p['audit_overhead_frac']:5.1%}   "
              f"{p['audited_pairs']} pairs audited   "
              f"{p['escaped']} escaped")

    # Shape claims: auditing more buys more detection; dual-executing
    # suspect devices beats spot sampling at the same fraction.
    assert points[-1]["detection_rate"] >= points[0]["detection_rate"]
    assert points[-1]["audited_pairs"] > points[0]["audited_pairs"]
    assert suspect_full["detection_rate"] >= points[1]["detection_rate"]
    for p in points + [suspect_full]:
        assert p["injected"] > 0 and p["detected"] > 0
        assert p["quarantined"]  # blame retires the corrupting devices

    # Clean workload: identical simulated outcome, bounded audit cost.
    it = spot_result.integrity
    assert it["injected"] == 0 and it["escaped"] == 0
    assert it["detection_rate"] == 1.0  # vacuously: nothing to detect
    assert it["audit_overhead_frac"] < 0.10  # the perf-gate bound
    assert off_result.integrity is None
    off_rate = rate_section(off_result, off_wall)
    spot_rate = rate_section(spot_result, spot_wall)
    assert off_rate["completed"] == spot_rate["completed"] == 2 * N_CLEAN
    ratio = (
        spot_rate["events_per_s_wall"] / off_rate["events_per_s_wall"]
        if off_rate["events_per_s_wall"] > 0 else 0.0
    )
    print(f"clean workload : off {off_rate['events_per_s_wall']:8.0f} ev/s   "
          f"spot {spot_rate['events_per_s_wall']:8.0f} ev/s   "
          f"ratio {ratio:.2f}   sim overhead {it['audit_overhead_frac']:.1%}")
    assert ratio > 0.6  # loose wall floor; the gate bounds the sim number

    payload = json.loads(OUT_PATH.read_text()) if OUT_PATH.exists() else {}
    payload["integrity"] = {
        "chaos_workload": {
            "vectors": N_CHAOS,
            "devices": 4,
            "corrupt_devices": 2,
            "bitflips": 2,
            "corruption_prob": 0.6,
            "seed": SEED,
        },
        "sweep": points,
        "suspect_full": suspect_full,
        "clean_workload": {
            "vectors": 2 * N_CLEAN,
            "devices": 8,
            "audit_fraction": CLEAN_AUDIT_FRACTION,
            "seed": SEED,
        },
        "off": off_rate,
        "spot": {
            **spot_rate,
            "audit_overhead_frac": it["audit_overhead_frac"],
            "audited_pairs": it["audited_pairs"],
        },
        "spot_events_rate_ratio": ratio,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"benchmark payload merged into {OUT_PATH}")
