"""Bench: learned routing vs the static policies under stale digests.

A three-node (4+4+4 GPU) cluster serves a single Poisson stream four
times per configuration — once per routing policy — across a 2x2 grid
of digest staleness (fresh ~2 ms syncs vs one mid-run sync) and gray
faults (off vs a persistent unannounced straggler slowing every device
of node 1).  The straggler is the failure mode digests cannot see:
heartbeats keep flowing and queue depths only betray the slowdown at
the *next* sync, so with stale digests the static policies keep
feeding the slow node at full weight.  The learned policy labels every
completion with its observed route→completion latency, learns node 1's
high intercept within a handful of samples, and routes around it long
before the digest catches up.

The headline assertion is the ISSUE acceptance bar: in the stale-digest
gray configuration the learned policy must beat the *best* static
policy on p99 latency or SLO attainment.  A replay run re-checks the
determinism contract (same seed, same bytes), and the fresh/no-fault
learned-vs-least-loaded wall-throughput ratio feeds the
``tools/perf_gate.py`` dispatch-overhead bound.

Writes the ``routing`` key of ``BENCH_serve.json`` (merge-write: the
sharded and throughput benches own their keys of the same file).
"""

import json
import resource
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.core.config import MiccoConfig
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.gpusim import CostModel, Topology
from repro.serve import (
    HealthConfig,
    PoissonArrivals,
    ServeConfig,
    ShardedServer,
)
from repro.serve.sharded.routing import ROUTING_POLICIES
from repro.workloads import SyntheticWorkload, WorkloadParams

MIB = 1024**2
SEED = 11
N_VECTORS = 160
#: Slow enough that the 160 tickets span ~40 ms of simulated time: the
#: learned policy warms up (3 shards x 4 samples) inside the first
#: quarter of the run and routes the rest with a live model.
RATE = 4_000.0
ROUTE_SLO_S = 8e-3
SYNC_FRESH_S = 2e-3
SYNC_STALE_S = 40e-3  # one mid-run sync: the router flies nearly blind
OUT_PATH = Path("BENCH_serve.json")


def cluster_config():
    topo = Topology(num_devices=12, devices_per_node=4)
    return MiccoConfig(
        num_devices=12, memory_bytes=64 * MIB, cost_model=CostModel(topology=topo)
    )


def vectors():
    # tensor_size=256 makes kernel compute the dominant latency term,
    # so a straggler's kernel-time multiplier actually moves the tail
    # (at tiny tensors the latency is all transfers + schedule time and
    # a slow device is invisible).
    params = WorkloadParams(
        num_vectors=N_VECTORS, vector_size=8, tensor_size=256,
        repeated_rate=0.6, batch=2,
    )
    return SyntheticWorkload(params, seed=3).vectors()


def serve_config(policy: str, sync_interval_s: float) -> ServeConfig:
    return ServeConfig(
        sharded=True, routing=policy, sync_interval_s=sync_interval_s,
        queue_capacity=128, schedule_latency_per_pair_s=1e-4,
        health=HealthConfig(),
        # Learned knobs (ignored by the static policies): warm up fast
        # relative to the 160-ticket stream.
        explore_floor=0.05, min_samples=3, refit_interval=2,
    )


def straggler_plan():
    """Node 1 (devices 4-7) silently 6x slow for the whole run.

    Nothing is announced and heartbeats keep flowing: digests only show
    the consequence (queue growth), one sync late.
    """
    return FaultPlan(tuple(
        FaultEvent(
            FaultKind.STRAGGLER, 1.5e-3, d, duration_s=0.5, slow_factor=8.0
        )
        for d in (4, 5, 6, 7)
    ))


def slo_violations(result) -> int:
    late = sum(1 for r in result.report.completed if r.latency_s > ROUTE_SLO_S)
    return late + len(result.report.dropped)


def peak_rss_mib() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def timed(policy: str, sync_interval_s: float, gray: bool):
    server = ShardedServer(
        config=cluster_config(), serve=serve_config(policy, sync_interval_s)
    )
    t0 = time.perf_counter()
    result = server.run(
        vectors(), PoissonArrivals(RATE), seed=SEED,
        faults=straggler_plan() if gray else None,
    )
    wall = time.perf_counter() - t0
    server.cluster.check_invariants()
    return result, wall


def section(result, wall_s: float) -> dict:
    s = result.summary()
    out = {
        "completed": s["completed"],
        "dropped": s["dropped"],
        "p50_ms_sim": s["p50_s"] * 1e3,
        "p99_ms_sim": s["p99_s"] * 1e3,
        "throughput_vps_sim": s["throughput_vps"],
        "slo_violations": slo_violations(result),
        "wall_s": wall_s,
        "tickets_per_s_wall": s["offered"] / wall_s if wall_s > 0 else 0.0,
        "peak_rss_mib": peak_rss_mib(),
    }
    if result.routing is not None:
        r = result.routing
        out["learned"] = {
            k: r[k] for k in ("decisions", "learned", "fallback", "explored")
        }
    return out


def sweep():
    grid = {}
    for sync_key, sync_s in (("fresh", SYNC_FRESH_S), ("stale", SYNC_STALE_S)):
        for gray in (False, True):
            cell = {}
            for policy in ROUTING_POLICIES:
                cell[policy] = timed(policy, sync_s, gray)
            grid[(sync_key, gray)] = cell
    # Determinism replay of the headline cell.
    grid["replay"] = timed("learned", SYNC_STALE_S, True)
    return grid


def test_learned_routing_beats_static_under_stale_gray(benchmark):
    grid = run_once(benchmark, sweep)
    statics = tuple(p for p in ROUTING_POLICIES if p != "learned")

    payload_grid = {}
    print()
    for sync_key, gray in (
        ("fresh", False), ("fresh", True), ("stale", False), ("stale", True),
    ):
        cell = grid[(sync_key, gray)]
        tag = f"{sync_key}_{'gray' if gray else 'clean'}"
        payload_grid[tag] = {}
        for policy in ROUTING_POLICIES:
            result, wall = cell[policy]
            s = result.summary()
            # Conservation first: a routing policy may only redistribute
            # load, never lose a ticket.
            assert s["completed"] + s["dropped"] == s["offered"] == N_VECTORS
            payload_grid[tag][policy] = section(result, wall)
            print(
                f"{tag:12s} {policy:18s} p99 {s['p99_s'] * 1e3:8.3f} ms   "
                f"{slo_violations(result):3d} SLO viol   "
                f"{wall * 1e3:6.1f} ms wall"
            )

    # The learned policy actually learned: in the headline cell most
    # decisions were model-driven, every shard trained, and the cold
    # start handed off to the fallback.
    learned_stale, _ = grid[("stale", True)]["learned"]
    r = learned_stale.routing
    assert r is not None
    assert r["fallback"] > 0
    assert r["learned"] > r["fallback"]
    assert all(x["samples"] > 0 for x in r["per_shard"].values())

    # --- The acceptance bar: with stale digests under the silent
    # straggler, learned must beat the BEST static policy on p99 or on
    # SLO attainment. ---
    stale_gray = payload_grid["stale_gray"]
    best_static_p99 = min(stale_gray[p]["p99_ms_sim"] for p in statics)
    best_static_viol = min(stale_gray[p]["slo_violations"] for p in statics)
    learned_p99 = stale_gray["learned"]["p99_ms_sim"]
    learned_viol = stale_gray["learned"]["slo_violations"]
    print(
        f"stale+gray  learned p99 {learned_p99:.3f} ms vs best static "
        f"{best_static_p99:.3f} ms   SLO viol {learned_viol} vs "
        f"{best_static_viol}"
    )
    assert (
        learned_p99 < best_static_p99 or learned_viol < best_static_viol
    ), "learned routing must beat the best static policy when digests are stale"

    # Same seed, same bytes: the exploration stream and the refit
    # cadence replay exactly.
    replay, _ = grid["replay"]
    assert replay.summary() == learned_stale.summary()
    assert replay.routing == learned_stale.routing

    # Dispatch-overhead figures for tools/perf_gate.py: learned vs
    # least-loaded on the clean fresh-sync cell.  The *simulated*
    # throughput ratio is the gated bound — it is a pure function of
    # the seed (how much worse do learned placements serve a healthy
    # cluster), so it gates hard on every run; the wall ratio moves
    # with runner hardware and is context only.
    clean = payload_grid["fresh_clean"]
    sim_ratio = (
        clean["learned"]["throughput_vps_sim"]
        / clean["least-loaded"]["throughput_vps_sim"]
    )
    wall_ratio = (
        clean["learned"]["tickets_per_s_wall"]
        / clean["least-loaded"]["tickets_per_s_wall"]
    )
    print(f"dispatch overhead: learned/least-loaded throughput "
          f"{sim_ratio:.2f}x sim, {wall_ratio:.2f}x wall")

    payload = {
        "routing": {
            "workload": {
                "vectors": N_VECTORS,
                "arrival_rate_vps": RATE,
                "devices": 12,
                "devices_per_node": 4,
                "slo_s": ROUTE_SLO_S,
                "sync_fresh_s": SYNC_FRESH_S,
                "sync_stale_s": SYNC_STALE_S,
                "seed": SEED,
            },
            "grid": payload_grid,
            "stale_gray_margin": {
                "learned_p99_ms": learned_p99,
                "best_static_p99_ms": best_static_p99,
                "learned_slo_violations": learned_viol,
                "best_static_slo_violations": best_static_viol,
            },
            "overhead": {
                "learned_throughput_vps_sim": clean["learned"][
                    "throughput_vps_sim"
                ],
                "least_loaded_throughput_vps_sim": clean["least-loaded"][
                    "throughput_vps_sim"
                ],
                "sim_ratio": sim_ratio,
                "wall_ratio": wall_ratio,
            },
        },
    }
    # Merge-write: the sharded and throughput benches own the other
    # keys of the same file.
    merged = json.loads(OUT_PATH.read_text()) if OUT_PATH.exists() else {}
    merged.update(payload)
    OUT_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    print(f"benchmark payload written to {OUT_PATH}")
