"""Bench: online serving — Groute vs. MICCO tail latency under load.

Sweeps the Poisson arrival rate from light load to overload on an
identical request stream and asserts the serving-layer shape claims:
MICCO's higher service rate turns into a lower p99 sojourn time once
queueing dominates, and the bounded admission queue sheds load at the
highest offered rate.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.config import MiccoConfig
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.groute import GrouteScheduler
from repro.schedulers.micco import MiccoScheduler
from repro.serve import MiccoServer, PoissonArrivals, ServeConfig
from repro.workloads import SyntheticWorkload, WorkloadParams

RATES = (50.0, 500.0, 5000.0)
SEED = 11


def sweep():
    params = WorkloadParams(
        vector_size=16, tensor_size=256, repeated_rate=0.8, num_vectors=40, batch=8
    )
    vectors = SyntheticWorkload(params, seed=3).vectors()
    config = MiccoConfig(num_devices=4)
    serve = ServeConfig(queue_capacity=8)
    rows = []
    for rate in RATES:
        row = {"rate": rate}
        for name, make in (
            ("groute", lambda: GrouteScheduler()),
            ("micco", lambda: MiccoScheduler(ReuseBounds(0, 4, 0))),
        ):
            result = MiccoServer(make(), config, serve).run(
                vectors, PoissonArrivals(rate), seed=SEED
            )
            s = result.summary()
            row[f"{name}_p99_s"] = s["p99_s"]
            row[f"{name}_dropped"] = s["dropped"]
            row[f"{name}_throughput"] = s["throughput_vps"]
        rows.append(row)
    return rows


def test_serve_latency(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    for r in rows:
        print(
            f"rate {r['rate']:7.0f}/s  p99 groute {r['groute_p99_s'] * 1e3:8.2f} ms"
            f"  micco {r['micco_p99_s'] * 1e3:8.2f} ms"
            f"  shed groute={r['groute_dropped']} micco={r['micco_dropped']}"
        )

    # MICCO beats Groute's tail at at least one offered rate.
    wins = [r for r in rows if r["micco_p99_s"] < r["groute_p99_s"]]
    assert wins, "MICCO should achieve lower p99 than Groute at some arrival rate"

    # Every completed run produced sane, finite percentiles.
    assert all(np.isfinite(r["micco_p99_s"]) and r["micco_p99_s"] > 0 for r in rows)

    # At the highest rate the bounded queue sheds load (backpressure).
    overload = rows[-1]
    assert overload["groute_dropped"] > 0 and overload["micco_dropped"] > 0

    # Below saturation nothing is shed and the system keeps up.
    light = rows[0]
    assert light["groute_dropped"] == 0 and light["micco_dropped"] == 0
