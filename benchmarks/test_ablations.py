"""Bench: design-choice ablations (beyond the paper's tables).

Asserts the mechanism attribution DESIGN.md claims: the local-reuse-
pattern machinery is the dominant contributor to MICCO's speedup; LRU
is the right victim policy; transfer/compute overlap lifts throughput
without erasing the scheduler gap; and the multi-node extension
amplifies MICCO's advantage as cross-node links slow down.
"""

from benchmarks.conftest import run_once
from repro.experiments import ablations


def test_ablations(benchmark):
    results = run_once(benchmark, ablations.run, quick=True)
    print()
    for res in results:
        print(res.table().to_text())
        print()

    policy, eviction, overlap, multinode = results

    # Pattern awareness is the load-bearing mechanism.
    assert policy.gflops("micco (full)") > 1.05 * policy.gflops("micco - patterns")
    assert policy.gflops("micco (full)") > policy.gflops("random")

    # LRU at least matches the alternative victim policies.
    assert eviction.gflops("lru") >= 0.99 * eviction.gflops("fifo")
    assert eviction.gflops("lru") >= 0.99 * eviction.gflops("largest")

    # Overlap helps everyone; MICCO's edge survives a perfect pipeline.
    assert overlap.gflops("micco overlap=1.0") > overlap.gflops("micco overlap=0.0")
    assert overlap.gflops("micco overlap=1.0") > 1.1 * overlap.gflops("groute overlap=1.0")

    # Cross-node links amplify the reuse advantage.
    gap_1 = multinode.gflops("micco 1x8") / multinode.gflops("groute 1x8")
    gap_4 = multinode.gflops("micco 4x2") / multinode.gflops("groute 4x2")
    assert gap_4 > gap_1
