"""Bench: Fig. 5 — Spearman correlation heatmap.

Builds a tuning set and computes the full 8×8 correlation matrix among
data characteristics, optimal reuse bounds, and GFLOPS.  Asserts the
paper's key reading: the data characteristics correlate positively
with achieved GFLOPS (tensor size most strongly — it drives arithmetic
intensity).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig5_spearman


def test_fig5_spearman(benchmark):
    res = run_once(benchmark, fig5_spearman.run, n_samples=100, seed=3, quick=True)
    print()
    print(res.table().to_text())

    assert res.matrix.shape == (8, 8)
    np.testing.assert_allclose(np.diag(res.matrix), 1.0)
    # Tensor size dominates GFLOPS (paper: positive, strongest block).
    assert res.corr("tensor_size", "gflops") > 0.5
    assert res.corr("vector_size", "gflops") > 0.0
    assert res.corr("repeated_rate", "gflops") > 0.0
