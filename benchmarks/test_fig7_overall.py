"""Bench: Fig. 7 — overall performance sweep.

Regenerates the Groute / MICCO-naive / MICCO-optimal throughput grid
over both distributions, vector sizes and repeated rates, and asserts
the paper's shape: MICCO-optimal wins overall, with geomean speedup
comfortably above 1 (paper: 1.57×/1.65×, max 2.25×).
"""

import numpy as np

from benchmarks.conftest import BENCH, run_once
from repro.experiments import fig7_overall


def test_fig7_overall(benchmark, predictor8):
    res = run_once(
        benchmark,
        fig7_overall.run,
        vector_sizes=(16, 64),
        repeated_rates=(0.25, 0.5, 0.75, 1.0),
        predictor=predictor8,
        **BENCH,
    )
    print()
    print(res.table().to_text())
    for dist in ("uniform", "gaussian"):
        print(f"geomean speedup ({dist}): {res.geomean_speedup(dist):.2f}x")

    # Shape assertions (paper: MICCO-optimal > Groute in all cases; we
    # allow one pathological corner — tiny vectors on many devices with
    # a near-degenerate hot pool — see EXPERIMENTS.md).
    speedups = np.array([r["speedup"] for r in res.rows])
    assert (speedups > 0.8).all(), "MICCO-optimal should never lose badly"
    assert np.mean(speedups > 1.0) >= 0.8, "MICCO-optimal should win almost everywhere"
    assert res.geomean_speedup("uniform") > 1.05
    assert res.geomean_speedup("gaussian") > 1.02
    assert res.max_speedup() > 1.15
    # MICCO-naive also beats Groute on average (heuristic alone helps).
    naive_sp = np.array([r["speedup_naive"] for r in res.rows])
    assert np.exp(np.mean(np.log(naive_sp))) > 1.0
