"""Shared fixtures for the benchmark harness.

Each ``test_*`` file regenerates one paper table/figure at a reduced
but structure-preserving scale (the full-scale runs are available via
``micco <experiment> --full``).  Benchmarks also assert the paper's
*shape* claims, so `pytest benchmarks/ --benchmark-only` doubles as a
reproduction regression suite.
"""

from __future__ import annotations

import pytest

from repro.core.config import MiccoConfig
from repro.experiments.common import get_default_predictor

#: Reduced sweep scale shared by the figure benches.
BENCH = dict(num_vectors=8, batch=16, seed=7)


@pytest.fixture(scope="session")
def predictor8():
    """Quick-trained predictor for 8-device configs (disk-cached)."""
    return get_default_predictor(MiccoConfig(num_devices=8), quick=True, seed=7)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
