#!/usr/bin/env python
"""CI perf-regression gate over the serving benchmark payload.

Compares the freshly benchmarked ``BENCH_serve.json`` against the
baseline committed at a git rev (default ``HEAD``) and fails — exit
code 1 — when the ``throughput`` section shows

* events/sec dropping more than ``--tolerance`` (default 20 %), or
* peak RSS growing more than ``--tolerance``.

Wall-clock events/sec moves with runner hardware, so the gate checks
the drift-immune in-process ``speedup_vs_reference`` ratio under the
same tolerance as well: a real core regression shows up there even
when the runner itself got faster.  A baseline without a
``throughput`` section (older payloads) passes trivially — the gate
arms itself on the first commit that carries one.

The ``integrity`` section gets an *absolute* bound instead of a
baseline diff: spot-mode auditing on the clean throughput workload
must charge less than 10 % of compute time to audit recomputation.
That figure is a pure function of the seed (the integrity layer draws
no RNG state), so it gates hard on every run; the wall events/sec
ratio vs integrity-off is printed for context only.  A fresh payload
without an ``integrity`` section passes trivially.

The ``routing`` section gets the same treatment: on the clean
fresh-sync cell of the routing sweep, the learned policy's *simulated*
throughput must stay within 15 % of least-loaded's (the per-decision
model work may reshape placements, never tank them).  The wall-clock
ratio is printed for context only.

Usage::

    python tools/perf_gate.py                 # fresh ./BENCH_serve.json vs HEAD
    python tools/perf_gate.py --fresh out.json --baseline-rev HEAD~1
    python tools/perf_gate.py --tolerance 0.3
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path


def load_fresh(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(f"perf gate: fresh payload {path} not found — "
                 "run the serving benchmarks first")
    except json.JSONDecodeError as exc:
        sys.exit(f"perf gate: fresh payload {path} is not valid JSON: {exc}")


def load_baseline(rev: str, path: Path) -> dict | None:
    """The payload committed at ``rev``, or ``None`` when absent."""
    proc = subprocess.run(
        ["git", "show", f"{rev}:{path.as_posix()}"],
        capture_output=True, text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def check(fresh: dict, baseline: dict, tolerance: float) -> list[str]:
    """Human-readable failure lines; empty when the gate passes."""
    base_t = baseline.get("throughput")
    if base_t is None:
        print("perf gate: baseline has no throughput section; passing")
        return []
    fresh_t = fresh.get("throughput")
    if fresh_t is None:
        return ["fresh payload has no throughput section — did the "
                "throughput benchmark run?"]

    failures = []

    def gauge(name, fresh_v, base_v, bigger_is_better):
        if not base_v:
            return
        ratio = fresh_v / base_v
        if bigger_is_better:
            ok, verb = ratio >= 1.0 - tolerance, "dropped"
            delta = 1.0 - ratio
        else:
            ok, verb = ratio <= 1.0 + tolerance, "grew"
            delta = ratio - 1.0
        arrow = "ok  " if ok else "FAIL"
        print(f"perf gate: {arrow} {name}: {base_v:,.1f} -> {fresh_v:,.1f} "
              f"({delta:+.1%} {verb}, tolerance {tolerance:.0%})")
        if not ok:
            failures.append(f"{name} {verb} {delta:.1%} (> {tolerance:.0%})")

    gauge(
        "events/sec (wall)",
        fresh_t["fast"]["events_per_s_wall"],
        base_t["fast"]["events_per_s_wall"],
        bigger_is_better=True,
    )
    gauge(
        "speedup vs reference core",
        fresh_t["speedup_vs_reference"],
        base_t["speedup_vs_reference"],
        bigger_is_better=True,
    )
    gauge(
        "peak RSS (MiB)",
        fresh_t["fast"]["peak_rss_mib"],
        base_t["fast"]["peak_rss_mib"],
        bigger_is_better=False,
    )
    return failures


#: Hard ceiling on the simulated spot-audit overhead fraction.
SPOT_AUDIT_OVERHEAD_BOUND = 0.10


def check_integrity(fresh: dict) -> list[str]:
    """Absolute bounds on the fresh ``integrity`` section.

    No baseline is consulted: the simulated audit overhead is
    deterministic, so the bound holds or the bench itself regressed.
    """
    section = fresh.get("integrity")
    if section is None:
        print("perf gate: fresh payload has no integrity section; skipping")
        return []

    failures = []
    overhead = section["spot"]["audit_overhead_frac"]
    ok = overhead < SPOT_AUDIT_OVERHEAD_BOUND
    arrow = "ok  " if ok else "FAIL"
    print(f"perf gate: {arrow} spot-audit overhead (simulated): "
          f"{overhead:.1%} (bound {SPOT_AUDIT_OVERHEAD_BOUND:.0%})")
    if not ok:
        failures.append(
            f"spot-audit overhead {overhead:.1%} "
            f"(>= {SPOT_AUDIT_OVERHEAD_BOUND:.0%})"
        )
    ratio = section.get("spot_events_rate_ratio")
    if ratio is not None:
        print(f"perf gate: info spot vs integrity-off events/sec (wall): "
              f"{ratio:.2f}x")
    return failures


#: Hard floor on learned-routing dispatch efficiency: on a healthy
#: cluster the learned policy's simulated throughput must stay within
#: 15 % of least-loaded's (the model work may reshape placements, not
#: tank them).
LEARNED_ROUTING_SIM_RATIO_BOUND = 0.85


def check_routing(fresh: dict) -> list[str]:
    """Absolute bound on the fresh ``routing`` section.

    Like the integrity bound, no baseline is consulted: the simulated
    learned/least-loaded throughput ratio is a pure function of the
    seed, so it holds or the routing bench itself regressed.  The
    wall-clock ratio moves with runner hardware and is printed for
    context only.
    """
    section = fresh.get("routing")
    if section is None:
        print("perf gate: fresh payload has no routing section; skipping")
        return []

    failures = []
    overhead = section["overhead"]
    ratio = overhead["sim_ratio"]
    ok = ratio >= LEARNED_ROUTING_SIM_RATIO_BOUND
    arrow = "ok  " if ok else "FAIL"
    print(f"perf gate: {arrow} learned routing throughput (simulated): "
          f"{ratio:.2f}x least-loaded "
          f"(bound {LEARNED_ROUTING_SIM_RATIO_BOUND:.2f}x)")
    if not ok:
        failures.append(
            f"learned routing simulated throughput {ratio:.2f}x least-loaded "
            f"(< {LEARNED_ROUTING_SIM_RATIO_BOUND:.2f}x)"
        )
    wall = overhead.get("wall_ratio")
    if wall is not None:
        print(f"perf gate: info learned vs least-loaded tickets/sec (wall): "
              f"{wall:.2f}x")
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--fresh", type=Path, default=Path("BENCH_serve.json"),
        help="freshly generated benchmark payload (default: ./BENCH_serve.json)",
    )
    ap.add_argument(
        "--baseline-rev", default="HEAD",
        help="git rev holding the committed baseline payload (default: HEAD)",
    )
    ap.add_argument(
        "--baseline-path", type=Path, default=Path("BENCH_serve.json"),
        help="payload path inside the baseline rev",
    )
    ap.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed fractional regression before failing (default: 0.20)",
    )
    args = ap.parse_args(argv)
    if not 0.0 < args.tolerance < 1.0:
        ap.error(f"--tolerance must be in (0, 1), got {args.tolerance}")

    fresh = load_fresh(args.fresh)
    baseline = load_baseline(args.baseline_rev, args.baseline_path)
    failures = []
    if baseline is None:
        print(f"perf gate: no baseline at {args.baseline_rev}:"
              f"{args.baseline_path}; skipping baseline diff")
    else:
        failures += check(fresh, baseline, args.tolerance)
    failures += check_integrity(fresh)
    failures += check_routing(fresh)
    if failures:
        print("perf gate: FAILED")
        for line in failures:
            print(f"  - {line}")
        return 1
    print("perf gate: passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
