#!/usr/bin/env python
"""Baryon systems and workload capture/replay.

Generates the two-nucleon (NN) baryon workload — rank-3 tensors, the
factorially-growing Wick contractions the paper's introduction
motivates — captures its vector stream to a JSON workload file, replays
it byte-identically, and compares schedulers on the replay.  Finishes
with the correlator C(t) and effective-mass curve from the real NumPy
contractions.

Run:  python examples/baryon_workload_replay.py
"""

from pathlib import Path
import tempfile

from repro import GrouteScheduler, Micco, MiccoConfig, ReuseBounds
from repro.redstar import RedstarPipeline, correlator_values, effective_mass, nucleon_nn
from repro.tensor.storage import TensorStore
from repro.workloads import load_stream, save_stream


def main() -> None:
    # 1. Generate the NN workload.
    spec = nucleon_nn(time_slices=6)
    pipe = RedstarPipeline(spec, seed=0)
    vectors = pipe.vectors()
    print(f"NN system: {pipe.stats.num_graphs} diagrams, "
          f"{pipe.stats.num_steps} baryon contractions, {len(vectors)} vectors, "
          f"{pipe.stats.total_bytes / 2**20:.1f} MiB footprint")

    # 2. Capture and replay — the reuse structure survives the roundtrip.
    path = Path(tempfile.gettempdir()) / "nn_workload.json"
    save_stream(vectors, path)
    replay = load_stream(path)
    print(f"captured to {path} ({path.stat().st_size / 1024:.0f} KiB), "
          f"replayed {len(replay)} vectors")

    # 3. Scheduler comparison on the replayed stream.
    config = MiccoConfig(num_devices=4, keep_outputs=True)
    groute = Micco.baseline(GrouteScheduler(), config).run(replay)
    micco = Micco.with_bounds(ReuseBounds(0, 4, 0), config).run(replay)
    print(f"\ngroute {groute.gflops:7.0f} GFLOPS | micco {micco.gflops:7.0f} GFLOPS "
          f"| speedup {micco.gflops / groute.gflops:.2f}x")

    # 4. Real numerics: execute the original stream and extract C(t).
    store = TensorStore(seed=7)
    numeric = Micco.with_bounds(ReuseBounds(0, 4, 0), config)
    numeric.engine.store = store
    numeric.run(vectors)
    values = correlator_values(vectors, store)
    masses = effective_mass(values)
    print("\nNN correlator (random gauge fields, so values are noise-like):")
    for t in sorted(values):
        meff = f"  m_eff={masses[t]:+.3f}" if t in masses else ""
        print(f"  t={t}: |C(t)| = {abs(values[t]):.4e}{meff}")


if __name__ == "__main__":
    main()
