#!/usr/bin/env python
"""Quickstart: schedule a synthetic correlation-function workload.

Builds a synthetic vector stream (the paper's evaluation workload),
runs it under the Groute baseline and two MICCO configurations on a
simulated eight-GPU node, and prints the throughput comparison.

Run:  python examples/quickstart.py
"""

from repro import (
    GrouteScheduler,
    Micco,
    MiccoConfig,
    ReuseBounds,
    SyntheticWorkload,
    WorkloadParams,
)


def main() -> None:
    # A stream of 10 vectors: 64 tensors each (32 contractions), tensor
    # size 384, half the tensors repeat earlier ones (uniformly picked).
    params = WorkloadParams(
        vector_size=64,
        tensor_size=384,
        repeated_rate=0.5,
        distribution="uniform",
        num_vectors=10,
        batch=32,
    )
    vectors = SyntheticWorkload(params, seed=0).vectors()

    # Eight MI100-class simulated GPUs.
    config = MiccoConfig(num_devices=8)

    systems = {
        "groute (earliest-available)": Micco.baseline(GrouteScheduler(), config),
        "micco-naive (bounds = 0)": Micco.naive(config),
        "micco (bounds = (0,4,0))": Micco.with_bounds(ReuseBounds(0, 4, 0), config),
    }

    print(f"workload: {len(vectors)} vectors x {len(vectors[0].pairs)} contractions, "
          f"tensor size {params.tensor_size}\n")
    baseline_gflops = None
    for name, system in systems.items():
        result = system.run(vectors)
        m = result.metrics
        if baseline_gflops is None:
            baseline_gflops = result.gflops
        print(
            f"{name:30s} {result.gflops:9.0f} GFLOPS  "
            f"(speedup {result.gflops / baseline_gflops:4.2f}x, "
            f"reuse hits {m.counts.reuse_hits}, "
            f"transfers {m.counts.input_fetches}, "
            f"imbalance {m.load_imbalance:.3f})"
        )

    print(
        "\nMICCO converts cross-vector tensor reuse into fewer transfers;"
        "\nthe reuse bound trades a little imbalance for more of it."
    )


if __name__ == "__main__":
    main()
