#!/usr/bin/env python
"""Oversubscription study: how memory pressure reshapes scheduling.

Sweeps device memory from comfortable (50 % subscribed) to heavily
oversubscribed (200 %) on a fixed workload and shows how eviction
counts explode, throughput falls, and MICCO's memory-eviction-sensitive
policy keeps it ahead of the reuse-blind baseline (paper Fig. 11).

Run:  python examples/oversubscription_study.py
"""

from repro import GrouteScheduler, Micco, MiccoConfig, ReuseBounds, SyntheticWorkload, WorkloadParams
from repro.workloads import capacity_for_oversubscription


def main() -> None:
    params = WorkloadParams(
        vector_size=64, tensor_size=384, repeated_rate=0.5,
        distribution="gaussian", num_vectors=10, batch=32,
    )
    vectors = SyntheticWorkload(params, seed=5).vectors()
    num_devices = 8

    print(f"{'demand/capacity':>16s} {'groute':>10s} {'micco':>10s} "
          f"{'speedup':>8s} {'evictions (g / m)':>20s}")
    for rate in (0.5, 1.0, 1.25, 1.5, 1.75, 2.0):
        cap = capacity_for_oversubscription(vectors, num_devices, rate)
        config = MiccoConfig(num_devices=num_devices, memory_bytes=cap)
        groute = Micco.baseline(GrouteScheduler(), config).run(vectors)
        micco = Micco.with_bounds(ReuseBounds(0, 4, 0), config).run(vectors)
        print(
            f"{rate:15.0%} "
            f"{groute.gflops:10.0f} {micco.gflops:10.0f} "
            f"{micco.gflops / groute.gflops:7.2f}x "
            f"{groute.metrics.counts.evictions:9d} / {micco.metrics.counts.evictions:d}"
        )

    print(
        "\nPast 100% subscription the LRU pools start evicting; every"
        "\nevicted tensor must be re-fetched over PCIe on next use, so"
        "\nthroughput falls — and placement quality (MICCO) matters more."
    )


if __name__ == "__main__":
    main()
