#!/usr/bin/env python
"""Meson spectroscopy: a correlation function end-to-end, with real math.

Walks the full Redstar-analog pipeline for a small a1 ↔ ρπ correlator:
Wick-diagram enumeration, graph contraction with interned
intermediates, dependency-stage partitioning, MICCO scheduling on a
simulated 4-GPU node — and *numerically executes* every contraction
with NumPy, finishing with the correlator values per time slice.

Run:  python examples/meson_spectroscopy.py
"""

import numpy as np

from repro import MiccoConfig
from repro.core.framework import Micco
from repro.core.session import run_stream
from repro.gpusim.engine import ExecutionEngine
from repro.redstar.correlator import CorrelatorSpec, Operator
from repro.redstar.pipeline import RedstarPipeline
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.groute import GrouteScheduler
from repro.schedulers.micco import MiccoScheduler
from repro.tensor.storage import TensorStore


def build_spec() -> CorrelatorSpec:
    """A small a1 system: single-particle a1 mixing with two-particle ρπ."""
    return CorrelatorSpec(
        name="a1_rhopi_demo",
        operators=(
            Operator(name="a1", hadrons=(("u", "dbar"),)),
            Operator(name="rho_pi", hadrons=(("u", "ubar"), ("u", "dbar")), momenta=3),
        ),
        tensor_size=32,   # small so the NumPy execution is instant
        batch=4,
        time_slices=6,
        max_vector_size=16,
    )


def main() -> None:
    spec = build_spec()
    pipe = RedstarPipeline(spec, seed=0)
    vectors = pipe.vectors()
    stats = pipe.stats

    print(f"correlator {spec.name!r}:")
    print(f"  {stats.num_graphs} contraction graphs over {spec.time_slices} time slices")
    print(f"  {stats.num_hadron_tensors} hadron tensors, "
          f"{stats.num_intermediate_tensors} interned intermediates")
    print(f"  {stats.num_steps} hadron contractions in {len(vectors)} vectors")
    print(f"  device footprint {stats.total_bytes / 2**20:.1f} MiB\n")

    # Schedule with MICCO and execute the real contraction kernels.
    store = TensorStore(seed=42)
    micco = Micco.with_bounds(ReuseBounds(0, 4, 0), MiccoConfig(num_devices=4, keep_outputs=True))
    micco.engine.store = store
    result = micco.run(vectors)

    print(f"MICCO:  {result.gflops:8.0f} GFLOPS simulated, "
          f"{result.metrics.counts.reuse_hits} reuse hits, "
          f"{result.metrics.counts.input_fetches} transfers")

    groute = Micco.baseline(GrouteScheduler(), MiccoConfig(num_devices=4, keep_outputs=True))
    g = groute.run(vectors)
    print(f"Groute: {g.gflops:8.0f} GFLOPS simulated, "
          f"{g.metrics.counts.reuse_hits} reuse hits, "
          f"{g.metrics.counts.input_fetches} transfers")
    print(f"speedup: {result.gflops / g.gflops:.2f}x\n")

    # Correlator value per time slice: trace of the last intermediate of
    # each slice's final stage (the host-side finishing step).
    print("correlator trace per sink time slice (real NumPy contractions):")
    by_slice: dict[int, list] = {}
    for v in vectors:
        by_slice.setdefault(v.vector_id // 10_000, []).extend(v.pairs)
    for t in sorted(by_slice):
        final = by_slice[t][-1]
        out = store.get(final.out.uid)
        corr = complex(np.trace(out.mean(axis=0)))
        print(f"  t={t}: C(t) = {corr.real:+.4e} {corr.imag:+.4e}i")


if __name__ == "__main__":
    main()
