#!/usr/bin/env python
"""Multi-tenant serving walkthrough: weighted fairness + autoscaling.

Two tenants share one simulated MICCO cluster: a high-priority
"analysis" pipeline (weight 3) and a best-effort "adhoc" stream
(weight 1, bursty traffic).  We run the same offered load three ways:

1. global FIFO admission — whoever arrives first wins, weights ignored;
2. weighted-fair admission — dispatches split ~3:1 under saturation;
3. weighted-fair plus a p99-driven autoscaler — the device pool starts
   at one device, grows on queue build-up or tail-latency pressure
   (paying a cold-start warm-up per device), and retires devices again
   when the burst passes, draining their in-flight work onto the
   survivors.

Everything is seeded and replayable; rerunning prints identical
numbers.

Run:  python examples/multi_tenant_serving.py
"""

from repro import (
    AutoscalerConfig,
    MiccoConfig,
    SloTargets,
    TenantSpec,
    WorkloadParams,
    serve,
)
from repro.serve import BurstyArrivals, PoissonArrivals, ServeConfig

SEED = 7


def tenants() -> tuple[TenantSpec, ...]:
    stream = WorkloadParams(vector_size=8, tensor_size=64, num_vectors=40, batch=2)
    return (
        TenantSpec(
            "analysis",
            PoissonArrivals(8_000.0),
            stream,
            weight=3.0,
            slo=SloTargets(p99_s=0.01, max_drop_rate=0.05),
        ),
        TenantSpec(
            "adhoc",
            BurstyArrivals(12_000.0, 200.0, mean_on_s=0.002, mean_off_s=0.01),
            stream,
            weight=1.0,
            slo=SloTargets(p99_s=0.05),
        ),
    )


def run(policy: str, autoscale: bool, devices: int = 4):
    cfg = ServeConfig(
        queue_capacity=128,
        queue_policy=policy,
        tenants=tenants(),
        autoscaler=AutoscalerConfig(
            min_devices=1,
            max_devices=4,
            p99_target_s=0.004,
            window_s=0.05,
            up_queue_depth=3,
            warmup_s=0.001,
            cooldown_s=0.005,
        )
        if autoscale
        else None,
    )
    # serve() sees the tenant roster on the config and dispatches the
    # multi-tenant server; no server class named anywhere.
    return serve(cfg, cluster=MiccoConfig(num_devices=devices), seed=SEED)


def describe(tag: str, result) -> None:
    s = result.summary()
    print(f"\n== {tag} ==")
    print(
        f"  global: {s['completed']}/{s['offered']} served, "
        f"p99 {s['p99_s'] * 1e3:.3f} ms, policy {s['queue']['policy']}"
    )
    for name, sec in result.tenants.items():
        t = sec["summary"]
        verdict = "ok" if sec["slo"]["attained"] else "MISS"
        print(
            f"  {name:<9} w={sec['weight']:g}  p99 {t['p99_s'] * 1e3:7.3f} ms  "
            f"mean wait {t['mean_queue_wait_s'] * 1e3:7.3f} ms  slo {verdict}"
        )
    if result.autoscale is not None:
        a = result.autoscale
        print(f"  autoscale: {a['scale_ups']} up, {a['scale_downs']} down")
        for act in a["actions"][:6]:
            print(
                f"    t={act['time_s'] * 1e3:7.2f} ms  {act['action']:<6} "
                f"device {act['device']}  alive {act['alive_after']}  ({act['reason']})"
            )


def main() -> None:
    fifo = run("fifo", autoscale=False)
    fair = run("auto", autoscale=False)
    minimal = run("auto", autoscale=False, devices=1)
    scaled = run("auto", autoscale=True)

    describe("global FIFO (weights ignored)", fifo)
    describe("weighted-fair admission", fair)
    describe("weighted-fair, fixed 1-device pool", minimal)
    describe("weighted-fair + p99 autoscaler (starts at 1 device)", scaled)

    # Weighted-fair should cut the heavy tenant's queue wait relative to
    # FIFO; the autoscaler should beat the fixed pool it starts from.
    fifo_wait = fifo.tenant_report("analysis").summary()["mean_queue_wait_s"]
    fair_wait = fair.tenant_report("analysis").summary()["mean_queue_wait_s"]
    print(
        f"\nanalysis-tenant mean wait: fifo {fifo_wait * 1e3:.3f} ms "
        f"-> weighted {fair_wait * 1e3:.3f} ms"
    )
    print(
        f"global p99: fixed 1-device pool {minimal.p99 * 1e3:.3f} ms "
        f"-> autoscaled {scaled.p99 * 1e3:.3f} ms "
        f"(fixed 4-device upper bound {fair.p99 * 1e3:.3f} ms)"
    )


if __name__ == "__main__":
    main()
