#!/usr/bin/env python
"""Multi-node clusters: the paper's future-work extension, working.

Runs the same 8-device workload on three topologies — one 8-GPU node,
two 4-GPU nodes, four 2-GPU nodes — where cross-node transfers pay
network bandwidth instead of the local link.  As the cluster fragments,
reuse-blind scheduling (Groute) bleeds throughput into the network
while MICCO's placement keeps traffic node-local, so the speedup grows
with the node count.  Also writes a Chrome-trace timeline for the last
run (load it at chrome://tracing or ui.perfetto.dev).

Run:  python examples/multinode_cluster.py
"""

from pathlib import Path
import tempfile

from repro import GrouteScheduler, Micco, MiccoConfig, ReuseBounds, SyntheticWorkload, WorkloadParams
from repro.gpusim import CostModel, Topology, TraceRecorder
from repro.schedulers import MiccoScheduler


def main() -> None:
    params = WorkloadParams(
        vector_size=64, tensor_size=384, repeated_rate=0.75,
        distribution="gaussian", num_vectors=10, batch=32,
    )
    vectors = SyntheticWorkload(params, seed=3).vectors()
    num_devices = 8

    print(f"{'topology':>10s} {'groute':>10s} {'micco':>10s} {'speedup':>9s}")
    trace = None
    for n_nodes in (1, 2, 4):
        topo = None
        if n_nodes > 1:
            topo = Topology(
                num_devices=num_devices,
                devices_per_node=num_devices // n_nodes,
                inter_node_bandwidth=6e9,   # IB-class network
            )
        cost_model = CostModel(topology=topo)
        config = MiccoConfig(num_devices=num_devices, cost_model=cost_model)

        groute = Micco(config, scheduler=GrouteScheduler()).run(vectors)

        trace = TraceRecorder()
        micco_sys = Micco(config, scheduler=MiccoScheduler(ReuseBounds(0, 4, 0)))
        micco_sys.engine.trace = trace
        micco = micco_sys.run(vectors)

        label = f"{n_nodes}x{num_devices // n_nodes}"
        print(f"{label:>10s} {groute.gflops:10.0f} {micco.gflops:10.0f} "
              f"{micco.gflops / groute.gflops:8.2f}x")

    path = Path(tempfile.gettempdir()) / "micco_multinode_trace.json"
    trace.save_chrome_trace(path)
    kinds = {k: len(trace.events_of(k)) for k in ("kernel", "h2d", "d2d", "evict")}
    print(f"\ntimeline of the 4x2 MICCO run written to {path}")
    print(f"  events: {kinds}")
    print("  open chrome://tracing (or ui.perfetto.dev) and load the file")


if __name__ == "__main__":
    main()
