#!/usr/bin/env python
"""Failure domains: correlated node loss, warm restore, admission gating.

A 2-node / 8-GPU pool serves a correlation-function stream while chaos
takes an entire node down at once.  The demo walks the three resilience
mechanisms of the failure-domain layer:

1. A ``node_lost`` fault atomically fails every device on the node;
   orphaned in-flight pairs are re-scheduled onto the surviving node,
   paying visible cross-node transfer costs.
2. The residency journal replays placement history onto a replacement
   device, pre-warming its working set (warm restore).
3. The fault-aware admission gate estimates each arrival's completion
   probability from the live fault rate and sheds the doomed ones as
   ``predicted-infeasible`` instead of wasting device time.

Run:  python examples/failure_domains.py
"""

from repro.core.config import MiccoConfig
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.gpusim import CostModel, Topology
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.micco import MiccoScheduler
from repro.serve import AutoscalerConfig, ServeConfig, make_server
from repro.workloads import SyntheticWorkload, WorkloadParams

MIB = 1024**2


def stream(n=40):
    params = WorkloadParams(
        vector_size=16, tensor_size=256, repeated_rate=0.9, num_vectors=n, batch=8
    )
    return SyntheticWorkload(params, seed=3).vectors()


def main() -> None:
    # Two nodes of four GPUs each; inter-node links are the slow path.
    topo = Topology(num_devices=8, devices_per_node=4)
    config = MiccoConfig(
        num_devices=8, memory_bytes=128 * MIB, cost_model=CostModel(topology=topo)
    )

    # Node 0 (devices 0-3) dies mid-run.  Naming any member device is
    # enough: the injector resolves the full blast radius.
    plan = FaultPlan((FaultEvent(FaultKind.NODE_LOST, 0.01, 0),))

    serve = ServeConfig(
        max_inflight=8,
        warm_restore=True,
        prewarm_fraction=0.25,
        fault_aware_admission=True,
        admission_min_success=0.5,
        autoscaler=AutoscalerConfig(
            min_devices=4, max_devices=8, initial_devices=8,
            warmup_s=0.002, replace_lost=True,
        ),
    )

    # make_server (not serve()) because we inspect the cluster after the
    # run; the class is still picked from the config.
    server = make_server(
        serve, cluster=config, scheduler=MiccoScheduler(ReuseBounds(0, 4, 0))
    )
    result = server.run(stream(), [i * 1e-3 for i in range(40)], seed=7, faults=plan)

    s = result.summary()
    f = result.faults
    print(f"served {s['completed']}/{s['offered']} vectors across the node loss")
    print(f"  queue policy      {s['queue']['policy']}")
    print(f"  node losses       {f['node_losses']} "
          f"(killed {f['device_losses']} devices atomically)")
    print(f"  orphaned tensors  {f['orphaned_tensors']}, "
          f"re-scheduled pairs {f['rescheduled_pairs']}")
    print(f"  cross-node fetches {f['cross_node_fetches']} "
          f"(recovery traffic on the slow link)")
    print(f"  availability      {f['availability_pct']:.1f}%")

    if result.journal is not None:
        j = result.journal
        print(f"  warm restore      {j['prewarmed_tensors']} tensors pre-warmed "
              f"over {j['restores']} restore(s), "
              f"cost {j['prewarm_cost_s'] * 1e3:.2f} ms")
    shed = s["dropped_by_reason"].get("predicted-infeasible", 0)
    print(f"  admission gate    {shed} arrival(s) shed predicted-infeasible")

    # The surviving node holds every live replica.
    survivors = server.cluster.alive_ids()
    print(f"  surviving devices {survivors} (node {topo.node_of(survivors[0])})")


if __name__ == "__main__":
    main()
