#!/usr/bin/env python
"""Online serving walkthrough: live traffic against MICCO and Groute.

The batch experiments replay a pre-collected vector stream; here the
same vectors *arrive over simulated time* instead.  We sweep the
Poisson arrival rate from light load to overload and watch the SLO
metrics: queue wait and tail latency stay flat while the system keeps
up, explode near saturation, and the bounded admission queue starts
shedding load beyond it.  The faster scheduler (MICCO) sustains a
higher rate before its tail lifts off.

Run:  python examples/online_serving.py
"""

from repro import (
    GrouteScheduler,
    MiccoConfig,
    MiccoScheduler,
    PoissonArrivals,
    ReuseBounds,
    ServeConfig,
    SyntheticWorkload,
    WorkloadParams,
    serve,
)


def main() -> None:
    # A stream of 60 small vectors with heavy cross-vector reuse — the
    # regime where MICCO's data-centric placement pays off.
    params = WorkloadParams(
        vector_size=16,
        tensor_size=256,
        repeated_rate=0.8,
        num_vectors=60,
        batch=8,
    )
    vectors = SyntheticWorkload(params, seed=3).vectors()
    config = MiccoConfig(num_devices=4)
    serve_cfg = ServeConfig(queue_capacity=16)

    systems = {
        "groute": lambda: GrouteScheduler(),
        "micco": lambda: MiccoScheduler(ReuseBounds(0, 4, 0)),
    }

    print(f"workload: {len(vectors)} vectors x {len(vectors[0].pairs)} contractions, "
          f"tensor size {params.tensor_size}; queue capacity {serve_cfg.queue_capacity}\n")
    print(f"{'rate/s':>8s}  {'system':8s} {'p50 ms':>8s} {'p95 ms':>8s} {'p99 ms':>8s} "
          f"{'thr/s':>7s} {'wait ms':>8s} {'shed':>5s}")
    for rate in (50.0, 400.0, 800.0, 3000.0):
        for name, make in systems.items():
            result = serve(
                serve_cfg,
                cluster=config,
                scheduler=make(),
                vectors=vectors,
                arrivals=PoissonArrivals(rate),
                seed=11,
            )
            s = result.summary()
            print(
                f"{rate:8.0f}  {name:8s} {s['p50_s'] * 1e3:8.2f} {s['p95_s'] * 1e3:8.2f} "
                f"{s['p99_s'] * 1e3:8.2f} {s['throughput_vps']:7.1f} "
                f"{s['mean_queue_wait_s'] * 1e3:8.2f} {s['dropped']:5d}"
            )

    print(
        "\nAt low rates latency is pure service time; near saturation the"
        "\nqueue dominates and MICCO's higher throughput becomes a tail-"
        "\nlatency win; in overload the bounded queue sheds the excess."
    )


if __name__ == "__main__":
    main()
