#!/usr/bin/env python
"""Reuse-bound tuning: train the regression model, persist it, use it.

Reproduces the paper's offline workflow at demo scale: grid-search the
optimal reuse bounds for a set of workload configurations, fit the
Random Forest on (characteristics → bounds), report test R² for all
three model families (Table IV), save the trained predictor to JSON,
reload it, and drive MICCO-optimal with it online.

Run:  python examples/reuse_bound_tuning.py
"""

from pathlib import Path
import tempfile

from repro import Micco, MiccoConfig, GrouteScheduler, SyntheticWorkload, WorkloadParams
from repro.ml import (
    GradientBoostingRegressor,
    LinearRegression,
    RandomForestRegressor,
    build_training_set,
    r2_score,
)
from repro.ml.persistence import load_predictor, save_predictor
from repro.ml.predictor import ReuseBoundPredictor


def main() -> None:
    config = MiccoConfig(num_devices=4)

    # 1. Offline tuning: grid-search bounds for sampled configurations
    #    (the paper uses 300 samples; 60 keeps the demo fast).
    print("tuning 60 workload configurations (grid search via the simulator)...")
    ts = build_training_set(60, config, seed=3, num_vectors=5, batch=8)
    Xtr, Ytr, Xte, Yte = ts.split(0.2, seed=0)

    # 2. Model comparison (Table IV).  At 60 samples the ~128-config
    #    evaluation grid is badly under-covered, so held-out R² is noisy
    #    and can go negative — the paper-scale comparison (300 samples)
    #    is `micco tab4 --full`.  What matters for the demo is step 4:
    #    even a roughly-fitted forest improves end-to-end throughput.
    print("\nmodel R² on held-out configurations (demo scale — see note):")
    models = {
        "linear regression": LinearRegression(),
        "gradient boosting": GradientBoostingRegressor(n_estimators=60, seed=0),
        "random forest": RandomForestRegressor(n_estimators=60, seed=0),
    }
    fitted = {}
    for name, model in models.items():
        model.fit(Xtr, Ytr)
        fitted[name] = model
        print(f"  {name:18s} {r2_score(Yte, model.predict(Xte)):+.3f}")

    # 3. Persist the winner and reload it (what a production run ships).
    predictor = ReuseBoundPredictor(fitted["random forest"])
    path = Path(tempfile.gettempdir()) / "micco_predictor.json"
    save_predictor(predictor, path)
    predictor = load_predictor(path)
    print(f"\npredictor saved to and reloaded from {path}")

    # 4. Online use: MICCO-optimal vs the baselines on a fresh stream.
    params = WorkloadParams(
        vector_size=32, tensor_size=384, repeated_rate=0.75,
        distribution="gaussian", num_vectors=10, batch=16,
    )
    vectors = SyntheticWorkload(params, seed=99).vectors()
    optimal = Micco.optimal(predictor, config).run(vectors)
    naive = Micco.naive(config).run(vectors)
    groute = Micco.baseline(GrouteScheduler(), config).run(vectors)

    print("\nfresh gaussian stream (vector 32, rate 75%):")
    print(f"  groute         {groute.gflops:8.0f} GFLOPS")
    print(f"  micco-naive    {naive.gflops:8.0f} GFLOPS  ({naive.gflops/groute.gflops:.2f}x)")
    print(f"  micco-optimal  {optimal.gflops:8.0f} GFLOPS  ({optimal.gflops/groute.gflops:.2f}x)")
    bounds_used = {rec["bounds"] for rec in optimal.per_vector if rec["bounds"]}
    print(f"  predicted bound triples used: {sorted(bounds_used)}")
    print(f"  inference overhead: {1e3 * optimal.inference_overhead_s:.2f} ms "
          f"over {len(vectors)} vectors")


if __name__ == "__main__":
    main()
