"""Thin setup.py kept for offline legacy editable installs.

The environment has no ``wheel`` package, so PEP 660 editable builds
(``pip install -e .``) fail; ``pip install -e . --no-use-pep517
--no-build-isolation`` takes the legacy path through this file.  All
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
